"""Catalog of calibrated device, link and platform presets.

The presets play the role of the paper's testbed (one core of an Intel Xeon
Platinum 8160 as the edge device ``D`` and an Nvidia P100 as the accelerator
``A``) plus the other device/accelerator combinations the paper mentions
(Raspberry Pi, smartphone).  The numbers are calibrated so that the *shape* of
the paper's results emerges from the analytic model -- see DESIGN.md for the
calibration rationale -- and are deliberately conservative about accelerator
efficiency on small kernels (``half_saturation_flops``), which is the
physical effect that makes offloading the small MathTasks of Table I
unprofitable.
"""

from __future__ import annotations

from .device import DeviceSpec
from .link import LinkSpec
from .platform import Platform

__all__ = [
    "xeon_8160_core",
    "nvidia_p100",
    "nvidia_p100_native",
    "raspberry_pi_4",
    "smartphone_soc",
    "edge_tpu_like",
    "pcie_gen3",
    "usb3",
    "wifi_ac",
    "lte",
    "gigabit_ethernet",
    "cpu_gpu_platform",
    "raspberry_gpu_platform",
    "smartphone_cloud_platform",
    "edge_cluster_platform",
    "PLATFORMS",
    "get_platform",
    "register_platform",
]


# ----------------------------------------------------------------------------
# Devices
# ----------------------------------------------------------------------------

def xeon_8160_core() -> DeviceSpec:
    """One core of an Intel Xeon Platinum 8160 (the paper's edge device ``D``)."""
    return DeviceSpec(
        name="xeon-8160-core",
        kind="cpu",
        peak_gflops=48.0,
        half_saturation_flops=2e5,
        memory_bandwidth_gbs=12.0,
        kernel_launch_overhead_s=3e-6,
        task_startup_overhead_s=0.0,
        power_active_w=15.0,
        power_idle_w=3.0,
        cost_per_hour=0.0,
    )


def nvidia_p100(dispatch_overhead_s: float = 3e-5) -> DeviceSpec:
    """Nvidia Pascal P100 accelerator *as driven by an eager high-level framework* (the paper's ``A``).

    The numbers model the throughput the paper's TensorFlow 2.1 setup actually
    extracts from the card for loops of small-to-medium dense kernels launched
    one by one from a single-core host -- far below the card's 4.7 TFLOP/s
    hardware peak (the paper itself measures only a 1.05x end-to-end speed-up
    from offloading its largest MathTask).  ``peak_gflops`` is therefore the
    calibrated *effective* asymptote for this dispatch regime, and
    ``half_saturation_flops`` / ``dispatch_overhead_s`` model occupancy and
    per-kernel framework dispatch.  Use :func:`nvidia_p100_native` for the
    hardware-peak description of the same card.
    """
    return DeviceSpec(
        name="nvidia-p100-framework",
        kind="gpu",
        peak_gflops=73.0,
        half_saturation_flops=2e6,
        memory_bandwidth_gbs=550.0,
        kernel_launch_overhead_s=dispatch_overhead_s,
        task_startup_overhead_s=5e-4,
        power_active_w=250.0,
        power_idle_w=30.0,
        cost_per_hour=1.50,
    )


def nvidia_p100_native() -> DeviceSpec:
    """Nvidia Pascal P100 at hardware peak (batched, fully saturated kernels)."""
    return DeviceSpec(
        name="nvidia-p100",
        kind="gpu",
        peak_gflops=4700.0,
        half_saturation_flops=4.5e9,
        memory_bandwidth_gbs=550.0,
        kernel_launch_overhead_s=1e-5,
        task_startup_overhead_s=5e-3,
        power_active_w=250.0,
        power_idle_w=30.0,
        cost_per_hour=1.50,
    )


def raspberry_pi_4() -> DeviceSpec:
    """Raspberry Pi 4 class edge device (one core)."""
    return DeviceSpec(
        name="raspberry-pi-4",
        kind="cpu",
        peak_gflops=6.0,
        half_saturation_flops=1e5,
        memory_bandwidth_gbs=4.0,
        kernel_launch_overhead_s=5e-6,
        task_startup_overhead_s=0.0,
        power_active_w=6.0,
        power_idle_w=2.0,
        cost_per_hour=0.0,
    )


def smartphone_soc() -> DeviceSpec:
    """Smartphone SoC (big core cluster) as an edge device."""
    return DeviceSpec(
        name="smartphone-soc",
        kind="cpu",
        peak_gflops=20.0,
        half_saturation_flops=2e5,
        memory_bandwidth_gbs=15.0,
        kernel_launch_overhead_s=5e-6,
        task_startup_overhead_s=0.0,
        power_active_w=4.0,
        power_idle_w=0.5,
        cost_per_hour=0.0,
    )


def edge_tpu_like() -> DeviceSpec:
    """A small matrix accelerator attached to an edge device (Edge-TPU / NPU class)."""
    return DeviceSpec(
        name="edge-npu",
        kind="npu",
        peak_gflops=400.0,
        half_saturation_flops=5e8,
        memory_bandwidth_gbs=30.0,
        kernel_launch_overhead_s=1e-4,
        task_startup_overhead_s=2e-3,
        power_active_w=2.0,
        power_idle_w=0.3,
        cost_per_hour=0.10,
    )


# ----------------------------------------------------------------------------
# Links
# ----------------------------------------------------------------------------

def pcie_gen3() -> LinkSpec:
    """PCIe gen3 x16 as seen by a high-level framework.

    Bandwidth is the effective host-device copy rate; ``latency_s`` is the cost
    of one framework-level transfer/synchronisation round-trip (op dispatch,
    staging buffers, stream sync), which dominates for small messages such as
    the scalar penalty exchanged between loops.
    """
    return LinkSpec(name="pcie-gen3", bandwidth_gbs=6.0, latency_s=1e-3, energy_per_byte_j=6e-9)


def usb3() -> LinkSpec:
    return LinkSpec(name="usb3", bandwidth_gbs=0.4, latency_s=2e-4, energy_per_byte_j=1e-8)


def wifi_ac() -> LinkSpec:
    return LinkSpec(name="wifi-ac", bandwidth_gbs=0.05, latency_s=2e-3, energy_per_byte_j=5e-8)


def lte() -> LinkSpec:
    return LinkSpec(name="lte", bandwidth_gbs=0.005, latency_s=3e-2, energy_per_byte_j=2e-7)


def gigabit_ethernet() -> LinkSpec:
    return LinkSpec(name="gigabit-ethernet", bandwidth_gbs=0.11, latency_s=5e-4, energy_per_byte_j=2e-8)


# ----------------------------------------------------------------------------
# Platforms
# ----------------------------------------------------------------------------

def cpu_gpu_platform() -> Platform:
    """The paper's testbed: Xeon core (``D``) + P100 (``A``) over PCIe."""
    return Platform(
        devices={"D": xeon_8160_core(), "A": nvidia_p100()},
        links={("D", "A"): pcie_gen3()},
        host="D",
        name="cpu-gpu",
    )


def raspberry_gpu_platform() -> Platform:
    """CPU-Raspbian style setting: a Raspberry Pi edge device offloading to a GPU server over Wi-Fi."""
    return Platform(
        devices={"D": raspberry_pi_4(), "A": nvidia_p100()},
        links={("D", "A"): wifi_ac()},
        host="D",
        name="raspberry-gpu",
    )


def smartphone_cloud_platform() -> Platform:
    """Smartphone offloading to a cloud GPU over LTE, with an on-device NPU as a second accelerator."""
    return Platform(
        devices={"D": smartphone_soc(), "A": nvidia_p100(), "N": edge_tpu_like()},
        links={("D", "A"): lte(), ("D", "N"): usb3(), ("A", "N"): lte()},
        host="D",
        name="smartphone-cloud",
    )


def edge_cluster_platform() -> Platform:
    """Four-device edge deployment: smartphone host, on-device NPU, edge server, cloud GPU.

    The richest preset -- ``4**k`` placements for a ``k``-task chain -- used by
    the streaming-search examples and benchmarks to exercise spaces that are
    far too large to materialise (4 devices x 12 tasks is ~16.7M placements).
    """
    return Platform(
        devices={
            "D": smartphone_soc(),
            "N": edge_tpu_like(),
            "E": xeon_8160_core(),
            "A": nvidia_p100(),
        },
        links={
            ("D", "N"): usb3(),
            ("D", "E"): gigabit_ethernet(),
            ("D", "A"): lte(),
            ("N", "E"): gigabit_ethernet(),
            ("N", "A"): lte(),
            ("E", "A"): gigabit_ethernet(),
        },
        host="D",
        name="edge-cluster",
    )


#: Registry of named platforms for the experiment harness and examples.
PLATFORMS = {
    "cpu-gpu": cpu_gpu_platform,
    "raspberry-gpu": raspberry_gpu_platform,
    "smartphone-cloud": smartphone_cloud_platform,
    "edge-cluster": edge_cluster_platform,
}


def get_platform(name: str) -> Platform:
    """Instantiate a registered platform by name."""
    try:
        factory = PLATFORMS[name]
    except KeyError as exc:
        raise KeyError(f"unknown platform {name!r}; available: {sorted(PLATFORMS)}") from exc
    return factory()


def register_platform(name: str, factory, overwrite: bool = False) -> None:
    """Register a platform factory under a name for :func:`get_platform`.

    ``factory`` is a zero-argument callable returning a fresh
    :class:`Platform` (a function, or e.g. ``functools.partial`` closing over
    a scenario-derived platform).  Re-registering an existing name requires
    ``overwrite=True`` so presets cannot be shadowed by accident.
    """
    if not name:
        raise ValueError("platform name must be non-empty")
    if not callable(factory):
        raise TypeError(f"platform factory must be callable, got {factory!r}")
    if name in PLATFORMS and not overwrite:
        raise ValueError(
            f"platform {name!r} is already registered (pass overwrite=True to replace it); "
            f"existing: {sorted(PLATFORMS)}"
        )
    PLATFORMS[name] = factory
