"""Heterogeneous platform: a set of devices joined by interconnects.

A :class:`Platform` maps short device aliases (``"D"`` for the edge device,
``"A"`` for the accelerator, ...) to :class:`~repro.devices.device.DeviceSpec`
objects and holds the :class:`~repro.devices.link.LinkSpec` between each pair.
One device is designated the *host*: it is where the scientific code is
invoked from and where task inputs originate, so offloading a task to any
other device pays the corresponding transfer costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from .device import DeviceSpec
from .link import LinkSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults sits above)
    from ..faults.models import FaultProfile

__all__ = ["Platform"]


def _pair(a: str, b: str) -> tuple[str, str]:
    """Canonical unordered key for a device pair."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class Platform:
    """A host device, optional accelerators and the links between them."""

    devices: Mapping[str, DeviceSpec]
    links: Mapping[tuple[str, str], LinkSpec] = field(default_factory=dict)
    host: str = "D"
    name: str = "platform"
    #: Optional fault description (see :mod:`repro.faults`): ``None`` means
    #: the classic fault-free world; executors only consult it when asked to
    #: evaluate under a retry policy.
    faults: "FaultProfile | None" = None

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a platform needs at least one device")
        if self.host not in self.devices:
            raise ValueError(f"host alias {self.host!r} is not among the devices {sorted(self.devices)}")
        # Normalise link keys to their canonical unordered form.
        normalised: dict[tuple[str, str], LinkSpec] = {}
        for (a, b), link in self.links.items():
            if a not in self.devices or b not in self.devices:
                raise ValueError(f"link ({a!r}, {b!r}) references unknown devices")
            if a == b:
                raise ValueError("links must connect two distinct devices")
            normalised[_pair(a, b)] = link
        object.__setattr__(self, "links", normalised)
        object.__setattr__(self, "devices", dict(self.devices))
        if self.faults is not None:
            # Imported lazily: repro.faults sits above repro.devices in the
            # import graph (its engines consume the cost tables).
            from ..faults.models import FaultProfile

            if not isinstance(self.faults, FaultProfile):
                raise TypeError(f"faults must be a FaultProfile or None, got {self.faults!r}")
            self.faults.validate_aliases(self.devices)

    # ------------------------------------------------------------------
    @property
    def aliases(self) -> list[str]:
        """Device aliases, host first."""
        others = [alias for alias in self.devices if alias != self.host]
        return [self.host, *others]

    @property
    def accelerators(self) -> list[str]:
        """All non-host device aliases."""
        return [alias for alias in self.devices if alias != self.host]

    def device(self, alias: str) -> DeviceSpec:
        try:
            return self.devices[alias]
        except KeyError as exc:
            raise KeyError(f"unknown device alias {alias!r}; available: {sorted(self.devices)}") from exc

    def link(self, a: str, b: str) -> LinkSpec:
        """The link between two distinct devices (raises if none is defined)."""
        if a == b:
            raise ValueError("no link is needed between a device and itself")
        self.device(a)
        self.device(b)
        try:
            return self.links[_pair(a, b)]
        except KeyError as exc:
            raise KeyError(f"no link defined between {a!r} and {b!r}") from exc

    def transfer_time(self, a: str, b: str, n_bytes: float) -> float:
        """Transfer time between two devices (0 if they are the same device)."""
        if a == b:
            return 0.0
        return self.link(a, b).transfer_time(n_bytes)

    def transfer_energy(self, a: str, b: str, n_bytes: float) -> float:
        """Transfer energy between two devices (0 if they are the same device)."""
        if a == b:
            return 0.0
        return self.link(a, b).transfer_energy(n_bytes)

    # ------------------------------------------------------------------
    def with_devices(self, replacements: Mapping[str, DeviceSpec], name: str | None = None) -> "Platform":
        """Derived platform with some device specs replaced (same topology).

        Every key must be an existing alias -- conditions change what a device
        *is* (its clocks, load, power), never which devices exist.  Links, the
        host designation and (by default) the name carry over unchanged.  This
        is the derivation primitive :func:`repro.scenarios.apply_conditions`
        builds scenario platforms with.
        """
        self.validate_aliases(replacements)
        return Platform(
            devices={**self.devices, **replacements},
            links=self.links,
            host=self.host,
            name=self.name if name is None else name,
            faults=self.faults,
        )

    def with_links(
        self, replacements: Mapping[tuple[str, str], LinkSpec], name: str | None = None
    ) -> "Platform":
        """Derived platform with some links replaced (same devices).

        Keys are unordered device pairs in either spelling; every pair must
        already be linked on this platform -- conditions degrade or upgrade an
        interconnect, they do not rewire the topology (build a new
        :class:`Platform` for that).
        """
        normalised: dict[tuple[str, str], LinkSpec] = {}
        for (a, b), link in replacements.items():
            key = _pair(a, b)
            if key not in self.links:
                raise KeyError(
                    f"no link defined between {a!r} and {b!r}; "
                    f"existing links: {sorted(self.links)}"
                )
            normalised[key] = link
        return Platform(
            devices=self.devices,
            links={**self.links, **normalised},
            host=self.host,
            name=self.name if name is None else name,
            faults=self.faults,
        )

    def with_faults(self, faults: "FaultProfile | None", name: str | None = None) -> "Platform":
        """Derived platform with the fault profile replaced (or cleared).

        Devices, links and host carry over unchanged: faults describe how the
        existing hardware misbehaves, they do not rewire it.  This is the
        derivation primitive the failure-regime condition axes
        (:class:`repro.scenarios.DeviceFailureRate`,
        :class:`repro.scenarios.LinkDropoutRate`) build scenario platforms
        with.
        """
        return Platform(
            devices=self.devices,
            links=self.links,
            host=self.host,
            name=self.name if name is None else name,
            faults=faults,
        )

    def validate_aliases(self, aliases: Iterable[str]) -> None:
        """Raise if any alias is not a device of this platform."""
        unknown = sorted(set(aliases) - set(self.devices))
        if unknown:
            raise KeyError(f"unknown device aliases {unknown}; available: {sorted(self.devices)}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Platform(name={self.name!r}, host={self.host!r}, "
            f"devices={list(self.devices)}, links={list(self.links)})"
        )
