"""Array-space platform parameters: the substrate of the fused grid build.

The condition-stacked grid builder used to derive one ``Platform`` dataclass
per scenario and re-gather every ``DeviceSpec``/``LinkSpec`` float with Python
``getattr`` loops -- O(scenarios x devices) object churn before a single
NumPy op ran.  :class:`PlatformParams` replaces that: every float parameter of
the base platform is broadcast once into a ``(n_scenarios, ...)`` array, and
condition axes transform the arrays in place through their vectorized
``scale_arrays`` hook (see :class:`~repro.scenarios.conditions.ConditionAxis`).

Elementwise NumPy float64 arithmetic rounds exactly like scalar Python float
arithmetic (both are IEEE-754 double operations), so a parameter array
transformed here is bitwise identical to gathering the same parameter from
the scalar-derived platforms -- the invariant the differential tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .platform import Platform

__all__ = ["PlatformParams"]

#: Every float field of a DeviceSpec, in declaration order.
DEVICE_FIELDS = (
    "peak_gflops",
    "half_saturation_flops",
    "memory_bandwidth_gbs",
    "kernel_launch_overhead_s",
    "task_startup_overhead_s",
    "power_active_w",
    "power_idle_w",
    "cost_per_hour",
)

#: Every float field of a LinkSpec.
LINK_FIELDS = ("bandwidth_gbs", "latency_s", "energy_per_byte_j")


@dataclass
class PlatformParams:
    """One platform's float parameters, broadcast across a scenario axis.

    ``device[field]`` is a writable ``(n_scenarios, n_devices)`` array over
    the platform's device insertion order; ``link[field]`` a writable
    ``(n_scenarios, n_links)`` array over the sorted canonical link pairs.
    Condition axes mutate these arrays in place (row ``i`` belongs to
    scenario ``i`` of whatever subset is being built).
    """

    base: Platform
    n_scenarios: int
    device_order: tuple[str, ...]
    link_pairs: tuple[tuple[str, str], ...]
    device: dict[str, np.ndarray] = field(default_factory=dict)
    link: dict[str, np.ndarray] = field(default_factory=dict)

    @classmethod
    def gather(cls, platform: Platform, n_scenarios: int) -> "PlatformParams":
        """Broadcast every float parameter of ``platform`` over ``n_scenarios`` rows."""
        device_order = tuple(platform.devices)
        link_pairs = tuple(sorted(platform.links))
        device = {
            name: np.tile(
                [getattr(platform.devices[alias], name) for alias in device_order],
                (n_scenarios, 1),
            )
            for name in DEVICE_FIELDS
        }
        link = {
            name: np.tile(
                np.array([getattr(platform.links[pair], name) for pair in link_pairs]),
                (n_scenarios, 1),
            )
            for name in LINK_FIELDS
        }
        return cls(
            base=platform,
            n_scenarios=n_scenarios,
            device_order=device_order,
            link_pairs=link_pairs,
            device=device,
            link=link,
        )

    # -- column selection (same validation errors as the scalar axis path) --
    def device_columns(self, devices: "tuple[str, ...] | None") -> np.ndarray:
        """Array columns of some device aliases (``None`` = every device)."""
        if devices is None:
            return np.arange(len(self.device_order), dtype=np.intp)
        self.base.validate_aliases(devices)
        index = {alias: i for i, alias in enumerate(self.device_order)}
        return np.array([index[alias] for alias in devices], dtype=np.intp)

    def link_columns(self, links: "tuple[tuple[str, str], ...] | None") -> np.ndarray:
        """Array columns of some link pairs (``None`` = every link)."""
        if links is None:
            return np.arange(len(self.link_pairs), dtype=np.intp)
        for a, b in links:
            self.base.link(a, b)  # raises with the usual message when absent
        index = {pair: i for i, pair in enumerate(self.link_pairs)}
        return np.array(
            [index[(a, b) if a <= b else (b, a)] for a, b in links], dtype=np.intp
        )
