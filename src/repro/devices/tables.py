"""Unified cost-table backend: one entry point for all six table families.

The engine grew six near-parallel table families -- chain/graph tables
(:mod:`repro.devices.batch`), their condition-stacked grid forms
(:mod:`repro.devices.grid`) and the fault-augmented variants of both
(:mod:`repro.faults.tables`) -- each with its own build function.
:func:`build_tables` collapses the dispatch into one place:

====================  ==========================  =============================
configuration          fault-free                  under faults (``retry=...``)
====================  ==========================  =============================
one platform           ``ChainCostTables`` /       ``FaultChainCostTables``
                       ``GraphCostTables``
platform sequence or   ``GridCostTables`` /        ``FaultGridCostTables``
``scenarios=...``      ``GraphGridCostTables``
====================  ==========================  =============================

Every returned object satisfies the :class:`CostTables` protocol --
``execute(placements)``, ``.n_tasks``, ``.aliases`` and a content-addressed
``.fingerprint`` (the composite SHA-256 of the build configuration, see
:mod:`repro.cache`) under which the executor's :class:`~repro.cache.TableCache`
stores it.  The four historical dispatchers (``build_cost_tables``,
``build_grid_tables``, ``build_fault_tables``, ``build_fault_grid_tables``)
are thin shims over this function, so every table in the system is
constructed through one code path.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Protocol, Sequence, runtime_checkable

import numpy as np

from ..cache import table_key
from .platform import Platform

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids import cycles
    from ..scenarios.grid import ScenarioGrid

__all__ = ["CostTables", "build_tables", "check_fault_args", "resolve_aliases"]


def resolve_aliases(platform: Platform, devices: Sequence[str] | None) -> tuple[str, ...]:
    """Validate and normalise the candidate device aliases.

    The shared preamble of every table builder: ``devices`` defaults to all
    platform devices (host first), must be non-empty, unique, and known to
    the platform.
    """
    aliases = tuple(devices) if devices is not None else tuple(platform.aliases)
    if not aliases:
        raise ValueError("at least one device alias is required")
    if len(set(aliases)) != len(aliases):
        raise ValueError("device aliases must be unique")
    platform.validate_aliases(aliases)
    return aliases


def check_fault_args(retry: Any, faults: Any, timeout: Any) -> None:
    """Reject fault arguments without a retry policy (shared validation)."""
    if retry is None and (faults is not None or timeout is not None):
        raise ValueError(
            "fault-aware evaluation needs retry=RetryPolicy(...); "
            "got faults/timeout without a retry policy"
        )


@runtime_checkable
class CostTables(Protocol):
    """What every table family exposes to the layers above.

    ``execute`` evaluates an ``(n_placements, n_tasks)`` device-index matrix
    (or any placement spelling :func:`~repro.devices.batch.as_placement_matrix`
    accepts) and returns the family's batch result; ``fingerprint`` is the
    content hash of the build configuration (empty for hand-built tables).
    """

    fingerprint: str

    @property
    def n_tasks(self) -> int: ...

    @property
    def aliases(self) -> tuple[str, ...]: ...

    def execute(self, placements: np.ndarray) -> Any: ...


def _as_scenario_grid(platform: Platform, scenarios: Any) -> "ScenarioGrid":
    """Coerce the scenarios argument to a grid (no platform derivation)."""
    from ..scenarios.grid import ScenarioGrid

    if not isinstance(platform, Platform):
        raise TypeError(
            "scenarios need a single base platform to derive from; "
            f"got platform={platform!r}"
        )
    if not isinstance(scenarios, ScenarioGrid):
        scenarios = ScenarioGrid(tuple(scenarios))
    return scenarios


def build_tables(
    workload: Any,
    platform: "Platform | Sequence[Platform]",
    *,
    devices: Sequence[str] | None = None,
    scenarios: Any = None,
    faults: Any = None,
    retry: Any = None,
    timeout: Any = None,
    slice_cache: Any = None,
):
    """Build the cost tables for one configuration, fingerprint attached.

    Parameters
    ----------
    workload:
        A :class:`~repro.tasks.chain.TaskChain` or
        :class:`~repro.tasks.graph.TaskGraph`.
    platform:
        One platform, or a sequence of scenario platforms (grid tables).
    devices:
        Candidate device aliases; defaults to every platform device.
    scenarios:
        A :class:`~repro.scenarios.grid.ScenarioGrid` (or scenario sequence)
        to derive grid tables from ``platform``; mutually exclusive with
        passing a platform sequence.  This is the **fused** grid path: when
        every pinned axis implements the vectorized
        :meth:`~repro.scenarios.conditions.ConditionAxis.scale_arrays` hook,
        the tables are built in array space without deriving per-scenario
        platforms (bitwise identical to the materializing build), and carry a
        build context enabling :meth:`~repro.devices.grid.GridCostTables.updated`
        delta rebuilds.
    faults, retry, timeout:
        Fault-aware evaluation: passing ``retry`` selects the fault table
        families; ``faults``/``timeout`` without ``retry`` is an error
        (mirroring the executor).
    slice_cache:
        Optional :class:`~repro.cache.TableCache` for per-scenario condition
        slices of fused grid builds; slices already cached (by content
        fingerprint) are served instead of recomputed.

    The returned object satisfies :class:`CostTables`; its ``fingerprint``
    is :func:`repro.cache.table_key` of the configuration, which is also the
    key the executor caches it under.
    """
    check_fault_args(retry, faults, timeout)

    platforms: list[Platform] | None = None
    grid: "ScenarioGrid | None" = None
    if scenarios is not None:
        grid = _as_scenario_grid(platform, scenarios)
        key_platform: Any = platform
    elif isinstance(platform, Platform):
        key_platform = platform
    else:
        platforms = list(platform)
        key_platform = platforms

    key = table_key(
        workload,
        key_platform,
        devices=devices,
        scenarios=grid,
        faults=faults,
        retry=retry,
        timeout=timeout,
    )

    if retry is not None:
        from ..faults.tables import _build_fault_grid_tables, _build_fault_tables

        if grid is not None:
            tables = _build_fault_grid_tables(
                workload,
                None,
                devices,
                retry=retry,
                faults=faults,
                timeout=timeout,
                platform=platform,
                scenarios=grid,
                slice_cache=slice_cache,
            )
        elif platforms is not None:
            tables = _build_fault_grid_tables(
                workload, platforms, devices, retry=retry, faults=faults, timeout=timeout
            )
        else:
            tables = _build_fault_tables(
                workload, platform, devices, retry=retry, faults=faults, timeout=timeout
            )
    elif grid is not None:
        from .grid import _attach_build_context, _build_grid_tables, _build_grid_tables_fused

        tables = _build_grid_tables_fused(
            workload, platform, grid, devices, slice_cache=slice_cache
        )
        if tables is None:
            # Some axis lacks the vectorized hook: materialize the per-scenario
            # platforms, but keep the build context so delta rebuilds work.
            tables = _build_grid_tables(workload, grid.platforms(platform), devices)
            tables = _attach_build_context(tables, workload, platform, grid, devices)
    elif platforms is not None:
        from .grid import _build_grid_tables

        tables = _build_grid_tables(workload, platforms, devices)
    else:
        from ..tasks.graph import TaskGraph
        from .batch import ChainCostTables, GraphCostTables

        if isinstance(workload, TaskGraph):
            tables = GraphCostTables.build(workload, platform, devices)
        else:
            tables = ChainCostTables.build(workload, platform, devices)

    return replace(tables, fingerprint=key)
