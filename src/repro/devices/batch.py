"""Vectorized batch execution engine: evaluate many placements in one pass.

The sequential :meth:`~repro.devices.simulator.SimulatedExecutor.execute` walks
a task chain in a Python loop, once per placement -- fine for the paper's
``2**3 = 8`` splits, hopeless for the ``m**k`` spaces its conclusion worries
about.  This module evaluates *all* placements of a workload at once:

* :class:`ChainCostTables` precomputes, per ``(task, device)``, the busy time
  (compute + startup), the host<->device transfer time/energy/bytes, and, per
  ``(device, device)``, the penalty-link costs of the scalar crossing devices;
* :class:`GraphCostTables` extends the tables with a
  :class:`~repro.tasks.graph.TaskGraph`'s dependency structure -- same
  per-entry values, evaluated level by level along the DAG;
* :func:`execute_placements` takes an ``(n_placements, n_tasks)`` integer
  device-index matrix and computes every scalar field of an
  :class:`~repro.devices.simulator.ExecutionRecord` with array operations.

The arithmetic is organised so the results are **bitwise identical** to the
sequential loop: per-task quantities come from the same scalar computations
(the tables), and all accumulations fold left in task order exactly like the
sequential accumulators (a plain ``np.sum`` would use pairwise summation and
drift in the last ulp for long chains).

For DAG workloads the timing model changes where the structure demands it:
a task starts when its slowest predecessor has finished *and* its device is
free (tasks sharing a device serialize in topological order; parallel
branches placed on different devices overlap -- the total time is the
critical path through the schedule), a fan-in join pays one penalty hop per
incoming edge (summed in canonical edge order), source tasks are fed by the
host exactly like a chain's first task, and energy/bytes/cost remain plain
sums over tasks and edges.  On a *linear* graph every one of these rules
degenerates to the chain rule -- the device-availability term never exceeds
the predecessor's finish time there -- and the results are bitwise identical
to the chain engine.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from ..tasks.chain import TaskChain
from ..tasks.graph import TaskGraph
from .costmodel import (
    PENALTY_MESSAGE_BYTES,
    finalize_execution,
    penalty_cost,
    task_device_cost,
)
from .platform import Platform
from .simulator import (
    ExecutionRecord,
    TaskExecutionRecord,
)
from .tables import build_tables, resolve_aliases

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (grid imports us)
    from .grid import GridCostTables

__all__ = [
    "ChainCostTables",
    "GraphCostTables",
    "BatchExecutionResult",
    "build_cost_tables",
    "execute_placements",
    "as_placement_matrix",
    "placement_labels",
]


@dataclass(frozen=True)
class ChainCostTables:
    """Precomputed per-(task, device) and per-(device, device) cost tables.

    ``aliases`` fixes the device-index encoding: placement matrices hold the
    position of each task's device in this tuple.  All per-task tables have
    shape ``(n_tasks, n_devices)``; the penalty tables have shape
    ``(n_devices, n_devices)`` with the first-task (host -> device) costs kept
    in separate vectors so the host does not need to be a candidate device.
    """

    # Task names only (not the TaskChain): tables are cached under content
    # fingerprints, and a back-reference would keep every workload object
    # alive for as long as its tables sit in the cache.
    task_names: tuple[str, ...]
    platform: Platform
    aliases: tuple[str, ...]
    busy: np.ndarray
    hostio_time: np.ndarray
    hostio_bytes: np.ndarray
    energy_in: np.ndarray
    energy_out: np.ndarray
    task_flops: np.ndarray
    penalty_time: np.ndarray
    penalty_energy: np.ndarray
    penalty_bytes: np.ndarray
    first_penalty_time: np.ndarray
    first_penalty_energy: np.ndarray
    first_penalty_bytes: np.ndarray
    #: Device pairs without a platform link: their table entries are NaN, and
    #: only placements that actually traverse such a pair are rejected (the
    #: sequential executor likewise fails only when a transfer needs the link).
    missing_links: frozenset = frozenset()
    #: Name of the workload the tables were built from (chain/graph name);
    #: used to attribute placement-shape errors to the offending workload.
    workload: str = ""
    #: Content fingerprint of the build configuration (see
    #: :func:`repro.devices.tables.build_tables`); empty for hand-built tables.
    fingerprint: str = ""

    @property
    def n_tasks(self) -> int:
        return len(self.task_names)

    @property
    def n_devices(self) -> int:
        return len(self.aliases)

    def execute(self, placements: np.ndarray) -> "BatchExecutionResult":
        """Evaluate a placement batch against these tables (protocol entry)."""
        return execute_placements(self, placements)

    @classmethod
    def build(
        cls, chain: TaskChain, platform: Platform, devices: Sequence[str] | None = None
    ) -> "ChainCostTables":
        """Precompute the cost tables of a chain for the given candidate devices.

        ``devices`` defaults to every device of the platform (host first).
        Requires a link between every pair of candidate devices and between the
        host and every candidate -- the same connectivity the sequential
        executor needs to run an arbitrary placement.
        """
        aliases = resolve_aliases(platform, devices)
        host = platform.host
        costs = chain.costs()
        k, m = len(chain), len(aliases)
        missing: set[tuple[str, str]] = set()

        busy = np.zeros((k, m))
        hostio_time = np.zeros((k, m))
        hostio_bytes = np.zeros((k, m))
        energy_in = np.zeros((k, m))
        energy_out = np.zeros((k, m))
        task_flops = np.array([cost.flops for cost in costs], dtype=float)
        for t, cost in enumerate(costs):
            for d, alias in enumerate(aliases):
                # The shared cost model performs the exact scalar expressions
                # (and the same single additions) as the sequential executor,
                # so the tables are bitwise exact.
                entry = task_device_cost(platform, cost, alias, on_missing_link="nan")
                if np.isnan(entry.hostio_time_s):
                    missing.add((host, alias))
                busy[t, d] = entry.busy_s
                hostio_time[t, d] = entry.hostio_time_s
                hostio_bytes[t, d] = entry.hostio_bytes
                energy_in[t, d] = entry.energy_in_j
                energy_out[t, d] = entry.energy_out_j

        penalty_time = np.zeros((m, m))
        penalty_energy = np.zeros((m, m))
        penalty_bytes = np.zeros((m, m))
        for i, a in enumerate(aliases):
            for j, b in enumerate(aliases):
                hop = penalty_cost(platform, a, b, on_missing_link="nan")
                if np.isnan(hop.time_s):
                    missing.add((a, b))
                penalty_time[i, j] = hop.time_s
                penalty_energy[i, j] = hop.energy_j
                penalty_bytes[i, j] = hop.n_bytes

        first_hops = [penalty_cost(platform, host, alias, on_missing_link="nan") for alias in aliases]
        for alias, hop in zip(aliases, first_hops):
            if np.isnan(hop.time_s):
                missing.add((host, alias))
        first_penalty_time = np.array([hop.time_s for hop in first_hops])
        first_penalty_energy = np.array([hop.energy_j for hop in first_hops])
        first_penalty_bytes = np.array([hop.n_bytes for hop in first_hops])
        return cls(
            task_names=tuple(chain.task_names),
            platform=platform,
            aliases=aliases,
            busy=busy,
            hostio_time=hostio_time,
            hostio_bytes=hostio_bytes,
            energy_in=energy_in,
            energy_out=energy_out,
            task_flops=task_flops,
            penalty_time=penalty_time,
            penalty_energy=penalty_energy,
            penalty_bytes=penalty_bytes,
            first_penalty_time=first_penalty_time,
            first_penalty_energy=first_penalty_energy,
            first_penalty_bytes=first_penalty_bytes,
            missing_links=frozenset(missing),
            workload=chain.name,
        )

    @classmethod
    def build_grid(
        cls,
        chain: TaskChain,
        platforms: "Sequence[Platform]",
        devices: Sequence[str] | None = None,
    ) -> "GridCostTables":
        """Condition-stacked tables of one chain over several scenario platforms.

        The platforms (typically :meth:`repro.scenarios.ScenarioGrid.platforms`
        output) must share device set, host and link topology; the returned
        :class:`~repro.devices.grid.GridCostTables` stacks every scenario's
        tables along a leading condition axis, each slice bitwise identical to
        :meth:`build` on that platform.  Feed it to
        :func:`~repro.devices.grid.execute_placements_grid`.
        """
        from .grid import build_grid_tables

        return build_grid_tables(chain, platforms, devices)


@dataclass(frozen=True)
class GraphCostTables(ChainCostTables):
    """Cost tables of a :class:`~repro.tasks.graph.TaskGraph` on a platform.

    The per-(task, device) and per-(device, device) tables are *identical* to
    :class:`ChainCostTables` built over the graph's tasks in topological
    order -- what changes is how :func:`execute_placements` traverses them:
    ``pred_positions`` carries each task's predecessors (by topological
    position, ascending), sources draw the ``first_penalty`` host feed, and
    the total time is the critical path instead of the serial sum.
    """

    #: Per topological position, the topological positions of the task's
    #: predecessors (ascending; empty = source task fed from the host).
    pred_positions: tuple[tuple[int, ...], ...] = ()

    @classmethod
    def build(
        cls, graph: TaskGraph, platform: Platform, devices: Sequence[str] | None = None
    ) -> "GraphCostTables":
        """Precompute the cost tables of a DAG workload on a platform.

        The value tables are built by :meth:`ChainCostTables.build` over the
        graph's topologically ordered tasks (bitwise the same entries a chain
        of those tasks would get); the graph contributes only its structure.
        """
        base = ChainCostTables.build(
            TaskChain(graph.tasks, name=graph.name), platform, devices
        )
        return as_graph_tables(base, graph.predecessor_positions)

    @classmethod
    def build_grid(
        cls,
        graph: TaskGraph,
        platforms: "Sequence[Platform]",
        devices: Sequence[str] | None = None,
    ) -> "GridCostTables":
        """Condition-stacked graph tables over several scenario platforms.

        The graph analogue of :meth:`ChainCostTables.build_grid`: returns a
        :class:`~repro.devices.grid.GraphGridCostTables` whose per-scenario
        slices are :class:`GraphCostTables`, each bitwise identical to
        :meth:`build` on that platform.
        """
        from .grid import build_grid_tables

        return build_grid_tables(graph, platforms, devices)


def as_graph_tables(
    base: ChainCostTables, pred_positions: tuple[tuple[int, ...], ...]
) -> GraphCostTables:
    """Attach DAG structure to already-built chain tables (shared with the grid)."""
    values = {f.name: getattr(base, f.name) for f in fields(ChainCostTables)}
    return GraphCostTables(**values, pred_positions=pred_positions)


def build_cost_tables(
    workload: TaskChain | TaskGraph,
    platform: Platform,
    devices: Sequence[str] | None = None,
) -> ChainCostTables:
    """Build the cost tables matching the workload type (chain or graph).

    Thin shim over :func:`repro.devices.tables.build_tables`, the single
    construction path for every table family.
    """
    return build_tables(workload, platform, devices=devices)


def as_placement_matrix(
    placements: np.ndarray | Iterable[Sequence[str] | str],
    aliases: Sequence[str],
    n_tasks: int,
    workload: str = "",
) -> np.ndarray:
    """Normalise placements to an ``(n_placements, n_tasks)`` device-index matrix.

    Accepts an integer matrix (validated and returned as-is up to dtype), or an
    iterable of placements in any of the sequential executor's spellings
    (strings like ``"DDA"``, alias tuples, :class:`~repro.offload.placement.Placement`).
    ``workload`` (a chain/graph name) is woven into shape errors so a failure
    inside a batch sweep names the workload it was evaluating.
    """
    what = f"workload {workload!r}" if workload else "the workload"
    if isinstance(placements, np.ndarray):
        if placements.dtype.kind not in "iu":
            raise TypeError("placement matrices must have an integer dtype")
        matrix = np.atleast_2d(placements)
        if matrix.ndim != 2 or matrix.shape[1] != n_tasks:
            raise ValueError(
                f"placement matrix has shape {placements.shape}, expected (*, {n_tasks}) "
                f"-- {what} has {n_tasks} tasks"
            )
        if matrix.shape[0] == 0:
            raise ValueError("at least one placement is required")
        if matrix.min() < 0 or matrix.max() >= len(aliases):
            raise ValueError(
                f"placement matrix entries must be device indices in [0, {len(aliases)}) "
                f"(candidate devices: {list(aliases)})"
            )
        return matrix
    index = {alias: i for i, alias in enumerate(aliases)}
    rows = []
    for placement in placements:
        entries = tuple(placement)
        if len(entries) != n_tasks:
            raise ValueError(
                f"placement {entries!r} has {len(entries)} entries but {what} has "
                f"{n_tasks} tasks (candidate devices: {list(aliases)})"
            )
        try:
            rows.append([index[alias] for alias in entries])
        except KeyError as exc:
            raise KeyError(
                f"placement {entries!r} for {what} uses device {exc.args[0]!r}, "
                f"not among the candidates {list(aliases)}"
            ) from exc
    if not rows:
        raise ValueError("at least one placement is required")
    return np.array(rows, dtype=np.intp)


def placement_labels(matrix: np.ndarray, aliases: Sequence[str]) -> list[str]:
    """Algorithm labels (``"DDA"``-style) for every row of a placement matrix."""
    if all(len(alias) == 1 for alias in aliases):
        # Vectorized join: view the (n, k) array of single characters as one
        # k-character string per row.
        lut = np.array(list(aliases), dtype="U1")
        grid = np.ascontiguousarray(lut[matrix])
        return grid.view(f"U{matrix.shape[1]}").ravel().tolist()
    return ["".join(aliases[d] for d in row) for row in matrix.tolist()]


@dataclass(frozen=True)
class BatchExecutionResult:
    """Array-form execution records of one batch: one row per placement.

    Every vector/column is bitwise identical to the corresponding scalar field
    of the sequential :class:`~repro.devices.simulator.ExecutionRecord`; use
    :meth:`record` to materialise the full object form of one row on demand
    (materialising millions of records would defeat the purpose of the batch).
    Device columns follow ``tables.aliases``; platform devices outside the
    candidate set have no column (they never run a task), but their idle
    energy is still folded into ``energy_total_j``, exactly like the
    sequential record.
    """

    tables: ChainCostTables
    placements: np.ndarray
    total_time_s: np.ndarray
    busy_by_device: np.ndarray
    flops_by_device: np.ndarray
    transferred_bytes: np.ndarray
    transfer_energy_j: np.ndarray
    active_j: np.ndarray
    idle_j: np.ndarray
    energy_total_j: np.ndarray
    operating_cost: np.ndarray

    def __len__(self) -> int:
        return self.placements.shape[0]

    @property
    def aliases(self) -> tuple[str, ...]:
        return self.tables.aliases

    def placement(self, index: int) -> tuple[str, ...]:
        return tuple(self.aliases[d] for d in self.placements[index])

    def label(self, index: int) -> str:
        return "".join(self.placement(index))

    def labels(self) -> list[str]:
        """Algorithm labels of every placement, in batch order."""
        return placement_labels(self.placements, self.aliases)

    def n_offloaded(self, host: str | None = None) -> np.ndarray:
        """Per-placement count of tasks placed away from the host device.

        The array form of ``Placement.n_offloaded``: one integer per batch row,
        computed straight from the device-index matrix.  ``host`` defaults to
        the platform host; a host outside the candidate ``aliases`` never runs
        a task, so every task of every placement counts as offloaded.
        """
        alias = self.tables.platform.host if host is None else host
        if alias not in self.tables.platform.devices:
            raise KeyError(
                f"unknown device alias {alias!r}; available: "
                f"{sorted(self.tables.platform.devices)}"
            )
        if alias not in self.aliases:
            return np.full(len(self), self.placements.shape[1], dtype=np.intp)
        host_index = self.aliases.index(alias)
        return np.count_nonzero(self.placements != host_index, axis=1)

    def metric_values(self, metric: str = "time") -> np.ndarray:
        """One scalar per placement: ``"time"``, ``"energy"`` or ``"cost"``."""
        if metric == "time":
            return self.total_time_s
        if metric == "energy":
            return self.energy_total_j
        if metric == "cost":
            return self.operating_cost
        raise ValueError(f"unknown metric {metric!r}; choose 'time', 'energy' or 'cost'")

    def argbest(self, metric: str = "time") -> int:
        """Index of the best (minimal) placement under the given metric."""
        return int(np.argmin(self.metric_values(metric)))

    def top(self, k: int, metric: str = "time") -> np.ndarray:
        """Indices of the ``k`` best placements, best first."""
        values = self.metric_values(metric)
        if not 0 < k <= values.size:
            raise ValueError(f"k must be in [1, {values.size}]")
        order = np.argsort(values, kind="stable")
        return order[:k]

    # ------------------------------------------------------------------
    def record(self, index: int) -> ExecutionRecord:
        """Materialise the full :class:`ExecutionRecord` of one placement.

        Replays the sequential accumulation with scalars taken from the cost
        tables, so every field -- including the per-task records -- is bitwise
        identical to ``SimulatedExecutor.execute`` (or, for graph tables,
        ``SimulatedExecutor.execute_graph``) on the same placement.
        """
        if isinstance(self.tables, GraphCostTables):
            return _graph_record(self.tables, self.placements[index])
        t = self.tables
        platform = t.platform
        row = self.placements[index]
        aliases_row = tuple(t.aliases[d] for d in row)

        task_records: list[TaskExecutionRecord] = []
        busy: dict[str, float] = {alias: 0.0 for alias in platform.devices}
        flops: dict[str, float] = {alias: 0.0 for alias in platform.devices}
        transferred = 0.0
        transfer_energy = 0.0
        total_time = 0.0
        for pos, (task_name, d) in enumerate(zip(t.task_names, row)):
            alias = t.aliases[d]
            busy_time = float(t.busy[pos, d])
            pen_time = float(t.first_penalty_time[d]) if pos == 0 else float(
                t.penalty_time[row[pos - 1], d]
            )
            pen_bytes = float(t.first_penalty_bytes[d]) if pos == 0 else float(
                t.penalty_bytes[row[pos - 1], d]
            )
            pen_energy = float(t.first_penalty_energy[d]) if pos == 0 else float(
                t.penalty_energy[row[pos - 1], d]
            )
            transfer_time = float(t.hostio_time[pos, d]) + pen_time
            task_bytes = float(t.hostio_bytes[pos, d]) + pen_bytes
            transfer_energy += float(t.energy_in[pos, d])
            transfer_energy += float(t.energy_out[pos, d])
            transfer_energy += pen_energy
            busy[alias] += busy_time
            flops[alias] += float(t.task_flops[pos])
            transferred += task_bytes
            total_time += busy_time + transfer_time
            task_records.append(
                TaskExecutionRecord(
                    task_name=task_name,
                    device=alias,
                    busy_time_s=busy_time,
                    transfer_time_s=transfer_time,
                    transferred_bytes=task_bytes,
                    flops=float(t.task_flops[pos]),
                )
            )

        energy, cost_total = finalize_execution(platform, busy, total_time, transfer_energy)
        return ExecutionRecord(
            placement=aliases_row,
            tasks=tuple(task_records),
            total_time_s=total_time,
            busy_time_by_device=busy,
            flops_by_device=flops,
            transferred_bytes=transferred,
            energy=energy,
            operating_cost=cost_total,
        )

    def records(self) -> Iterator[ExecutionRecord]:
        """Iterate the materialised records of every placement, in batch order."""
        for index in range(len(self)):
            yield self.record(index)


def execute_placements(tables: ChainCostTables, placements: np.ndarray) -> BatchExecutionResult:
    """Evaluate every placement row of the matrix against the cost tables.

    ``placements`` must be an ``(n_placements, n_tasks)`` integer matrix of
    positions into ``tables.aliases`` (see :func:`as_placement_matrix`).
    :class:`GraphCostTables` route through the DAG engine (critical-path
    latency, per-edge penalty hops); :class:`ChainCostTables` keep the serial
    chain fold.  Either way the result is a :class:`BatchExecutionResult`, so
    every downstream layer (search, selection, scenarios, measurements)
    consumes graph batches unchanged.
    """
    P = as_placement_matrix(placements, tables.aliases, tables.n_tasks, workload=tables.workload)
    P = P.astype(np.intp, copy=False)  # one cast up front instead of per gather
    if isinstance(tables, GraphCostTables):
        return _execute_graph_placements(tables, P)
    n, k = P.shape
    m = tables.n_devices
    task_idx = np.arange(k)

    busy_pt = tables.busy[task_idx, P]
    hostio_time_pt = tables.hostio_time[task_idx, P]
    hostio_bytes_pt = tables.hostio_bytes[task_idx, P]
    energy_in_pt = tables.energy_in[task_idx, P]
    energy_out_pt = tables.energy_out[task_idx, P]
    pen_time_pt = np.empty((n, k))
    pen_energy_pt = np.empty((n, k))
    pen_bytes_pt = np.empty((n, k))
    pen_time_pt[:, 0] = tables.first_penalty_time[P[:, 0]]
    pen_energy_pt[:, 0] = tables.first_penalty_energy[P[:, 0]]
    pen_bytes_pt[:, 0] = tables.first_penalty_bytes[P[:, 0]]
    if k > 1:
        src, dst = P[:, :-1], P[:, 1:]
        pen_time_pt[:, 1:] = tables.penalty_time[src, dst]
        pen_energy_pt[:, 1:] = tables.penalty_energy[src, dst]
        pen_bytes_pt[:, 1:] = tables.penalty_bytes[src, dst]
    transfer_pt = hostio_time_pt + pen_time_pt

    if tables.missing_links and np.isnan(transfer_pt).any():
        # A placement traverses a device pair without a platform link: reject
        # it like the sequential executor does (placements avoiding the
        # missing links evaluate fine on partially linked platforms).
        i, t = (int(v) for v in np.argwhere(np.isnan(transfer_pt))[0])
        current = tables.aliases[P[i, t]]
        if np.isnan(hostio_time_pt[i, t]):
            a, b = tables.platform.host, current
        else:
            a = tables.platform.host if t == 0 else tables.aliases[P[i, t - 1]]
            b = current
        raise KeyError(
            f"no link defined between {a!r} and {b!r} "
            f"(required by placement {placement_labels(P[i : i + 1], tables.aliases)[0]!r})"
        )

    # Left folds in task order: bitwise identical to the sequential accumulators.
    total_time = np.zeros(n)
    transferred = np.zeros(n)
    transfer_energy = np.zeros(n)
    busy_by_device = np.zeros((n, m))
    flops_by_device = np.zeros((n, m))
    for t in range(k):
        total_time += busy_pt[:, t] + transfer_pt[:, t]
        transferred += hostio_bytes_pt[:, t] + pen_bytes_pt[:, t]
        transfer_energy += energy_in_pt[:, t]
        transfer_energy += energy_out_pt[:, t]
        transfer_energy += pen_energy_pt[:, t]
        # Per-device accumulation via boolean masks (x * True == x, x * False
        # == 0.0, and adding 0.0 is a bitwise no-op for our non-negative
        # finite values) -- the same fold the sequential dict does, but
        # without a fancy-index scatter per task.
        col = P[:, t]
        for d in range(m):
            mask = col == d
            busy_by_device[:, d] += busy_pt[:, t] * mask
            flops_by_device[:, d] += tables.task_flops[t] * mask

    return _finalize_placements(
        tables, P, total_time, transferred, transfer_energy, busy_by_device, flops_by_device
    )


def _finalize_placements(
    tables: ChainCostTables,
    P: np.ndarray,
    total_time: np.ndarray,
    transferred: np.ndarray,
    transfer_energy: np.ndarray,
    busy_by_device: np.ndarray,
    flops_by_device: np.ndarray,
) -> BatchExecutionResult:
    """Per-device energy/cost finalization shared by the chain and graph engines."""
    n = P.shape[0]
    platform = tables.platform
    power_active = np.array([platform.device(a).power_active_w for a in tables.aliases])
    power_idle = np.array([platform.device(a).power_idle_w for a in tables.aliases])
    cost_per_hour = np.array([platform.device(a).cost_per_hour for a in tables.aliases])
    active = busy_by_device * power_active
    idle = np.maximum(total_time[:, None] - busy_by_device, 0.0) * power_idle

    # The sequential path folds the per-device terms in platform order over
    # *all* platform devices.  Platform devices absent from the candidate set
    # have zero busy time there, so their active-energy and operating-cost
    # terms are exactly 0.0 -- but they still idle for the whole execution,
    # so their idle energy must enter the total.
    column = {alias: j for j, alias in enumerate(tables.aliases)}
    operating_cost = np.zeros(n)
    active_sum = np.zeros(n)
    idle_sum = np.zeros(n)
    for alias in platform.devices:
        j = column.get(alias)
        if j is None:
            idle_sum += np.maximum(total_time - 0.0, 0.0) * platform.device(alias).power_idle_w
            continue
        operating_cost += (cost_per_hour[j] * busy_by_device[:, j]) / 3600.0
        active_sum += active[:, j]
        idle_sum += idle[:, j]
    energy_total = active_sum + idle_sum + transfer_energy

    return BatchExecutionResult(
        tables=tables,
        placements=P,
        total_time_s=total_time,
        busy_by_device=busy_by_device,
        flops_by_device=flops_by_device,
        transferred_bytes=transferred,
        transfer_energy_j=transfer_energy,
        active_j=active,
        idle_j=idle,
        energy_total_j=energy_total,
        operating_cost=operating_cost,
    )


# ----------------------------------------------------------------------------
# DAG engine: level-ordered evaluation with critical-path latency
# ----------------------------------------------------------------------------

def _execute_graph_placements(tables: GraphCostTables, P: np.ndarray) -> BatchExecutionResult:
    """Evaluate every placement of a DAG workload in one vectorized pass.

    Walks the tasks in topological (level) order with the placement axis
    vectorized: per task, the incoming penalty hops fold left in canonical
    edge order, the start time is the max over predecessor finish times and
    the device's availability (same-device tasks serialize), and the total
    time is the running max over finish times (the critical path).  Every
    element undergoes exactly the IEEE-754 operations of the sequential
    ``SimulatedExecutor.execute_graph`` loop, so results are bitwise equal --
    and on a linear graph, bitwise equal to the chain engine.
    """
    n, k = P.shape
    m = tables.n_devices
    task_idx = np.arange(k)
    preds = tables.pred_positions

    busy_pt = tables.busy[task_idx, P]
    hostio_time_pt = tables.hostio_time[task_idx, P]
    hostio_bytes_pt = tables.hostio_bytes[task_idx, P]
    energy_in_pt = tables.energy_in[task_idx, P]
    energy_out_pt = tables.energy_out[task_idx, P]
    pen_time_pt = np.zeros((n, k))
    pen_energy_pt = np.zeros((n, k))
    pen_bytes_pt = np.zeros((n, k))
    for t in range(k):
        dst = P[:, t]
        if preds[t]:
            # Fan-in join: one penalty hop per incoming edge, folded left in
            # canonical edge order (the join_penalty_cost accumulation).
            for p in preds[t]:
                pen_time_pt[:, t] += tables.penalty_time[P[:, p], dst]
                pen_energy_pt[:, t] += tables.penalty_energy[P[:, p], dst]
                pen_bytes_pt[:, t] += tables.penalty_bytes[P[:, p], dst]
        else:
            # Source task: fed from the host, like a chain's first task.
            pen_time_pt[:, t] = tables.first_penalty_time[dst]
            pen_energy_pt[:, t] = tables.first_penalty_energy[dst]
            pen_bytes_pt[:, t] = tables.first_penalty_bytes[dst]
    transfer_pt = hostio_time_pt + pen_time_pt

    if tables.missing_links and np.isnan(transfer_pt).any():
        i, t = (int(v) for v in np.argwhere(np.isnan(transfer_pt))[0])
        _raise_graph_missing_link(
            tables.aliases,
            tables.platform.host,
            preds[t],
            P,
            i,
            t,
            bool(np.isnan(hostio_time_pt[i, t])),
            lambda p: bool(np.isnan(tables.penalty_time[P[i, p], P[i, t]])),
        )

    total_time = np.zeros(n)
    finish = np.zeros((n, k))
    available = np.zeros((n, m))
    rows = np.arange(n)
    transferred = np.zeros(n)
    transfer_energy = np.zeros(n)
    busy_by_device = np.zeros((n, m))
    flops_by_device = np.zeros((n, m))
    for t in range(k):
        ready = np.zeros(n)
        for p in preds[t]:
            ready = np.maximum(ready, finish[:, p])
        # Device serialization: wait for the device's previous task too (a
        # no-op on linear graphs, where the device never lags the predecessor).
        start = np.maximum(ready, available[rows, P[:, t]])
        finish[:, t] = start + (busy_pt[:, t] + transfer_pt[:, t])
        available[rows, P[:, t]] = finish[:, t]
        total_time = np.maximum(total_time, finish[:, t])
        transferred += hostio_bytes_pt[:, t] + pen_bytes_pt[:, t]
        transfer_energy += energy_in_pt[:, t]
        transfer_energy += energy_out_pt[:, t]
        transfer_energy += pen_energy_pt[:, t]
        col = P[:, t]
        for d in range(m):
            mask = col == d
            busy_by_device[:, d] += busy_pt[:, t] * mask
            flops_by_device[:, d] += tables.task_flops[t] * mask

    return _finalize_placements(
        tables, P, total_time, transferred, transfer_energy, busy_by_device, flops_by_device
    )


def _raise_graph_missing_link(
    aliases: Sequence[str],
    host: str,
    preds: Sequence[int],
    P: np.ndarray,
    i: int,
    t: int,
    hostio_nan: bool,
    pen_nan,
) -> None:
    """Reject placement ``i`` whose task ``t`` traverses a missing link.

    Shared by the batch and grid DAG engines (which differ only in how they
    detect a NaN entry): ``hostio_nan`` flags a missing host link at
    ``(i, t)``, ``pen_nan(p)`` whether the hop from predecessor position
    ``p`` is missing.  Names the offending device pair like the chain engine.
    """
    current = aliases[P[i, t]]
    a = host
    if not hostio_nan:
        for p in preds:
            if pen_nan(p):
                a = aliases[P[i, p]]
                break
    raise KeyError(
        f"no link defined between {a!r} and {current!r} "
        f"(required by placement {placement_labels(P[i : i + 1], aliases)[0]!r})"
    )


def _graph_record(tables: GraphCostTables, row: np.ndarray) -> ExecutionRecord:
    """Replay ``SimulatedExecutor.execute_graph`` with scalars from the tables.

    The graph analogue of :meth:`BatchExecutionResult.record`: identical fold
    orders (edge-ordered penalty sums, max-over-predecessors ready times), so
    every field is bitwise identical to the sequential graph executor.
    """
    platform = tables.platform
    aliases_row = tuple(tables.aliases[d] for d in row)

    task_records: list[TaskExecutionRecord] = []
    busy: dict[str, float] = {alias: 0.0 for alias in platform.devices}
    flops: dict[str, float] = {alias: 0.0 for alias in platform.devices}
    transferred = 0.0
    transfer_energy = 0.0
    total_time = 0.0
    finish: list[float] = []
    available: dict[str, float] = {alias: 0.0 for alias in platform.devices}
    for pos, (task_name, d) in enumerate(zip(tables.task_names, row)):
        alias = tables.aliases[d]
        preds = tables.pred_positions[pos]
        if preds:
            pen_time = 0.0
            pen_energy = 0.0
            pen_bytes = 0.0
            for p in preds:
                pen_time += float(tables.penalty_time[row[p], d])
                pen_energy += float(tables.penalty_energy[row[p], d])
                pen_bytes += float(tables.penalty_bytes[row[p], d])
        else:
            pen_time = float(tables.first_penalty_time[d])
            pen_energy = float(tables.first_penalty_energy[d])
            pen_bytes = float(tables.first_penalty_bytes[d])
        ready = 0.0
        for p in preds:
            ready = max(ready, finish[p])
        start = max(ready, available[alias])
        busy_time = float(tables.busy[pos, d])
        transfer_time = float(tables.hostio_time[pos, d]) + pen_time
        task_bytes = float(tables.hostio_bytes[pos, d]) + pen_bytes
        transfer_energy += float(tables.energy_in[pos, d])
        transfer_energy += float(tables.energy_out[pos, d])
        transfer_energy += pen_energy
        busy[alias] += busy_time
        flops[alias] += float(tables.task_flops[pos])
        transferred += task_bytes
        end = start + (busy_time + transfer_time)
        finish.append(end)
        available[alias] = end
        total_time = max(total_time, end)
        task_records.append(
            TaskExecutionRecord(
                task_name=task_name,
                device=alias,
                busy_time_s=busy_time,
                transfer_time_s=transfer_time,
                transferred_bytes=task_bytes,
                flops=float(tables.task_flops[pos]),
            )
        )

    energy, cost_total = finalize_execution(platform, busy, total_time, transfer_energy)
    return ExecutionRecord(
        placement=aliases_row,
        tasks=tuple(task_records),
        total_time_s=total_time,
        busy_time_by_device=busy,
        flops_by_device=flops,
        transferred_bytes=transferred,
        energy=energy,
        operating_cost=cost_total,
    )
