"""Interconnect model between devices.

Offloading a task moves its inputs to the accelerator and its results back;
the :class:`LinkSpec` captures the bandwidth, latency and energy cost of that
movement.  Several canonical links (PCIe, USB, Wi-Fi, LTE, loopback) are
provided by :mod:`repro.devices.catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LinkSpec"]


@dataclass(frozen=True)
class LinkSpec:
    """Point-to-point interconnect between two devices."""

    name: str
    bandwidth_gbs: float
    latency_s: float = 0.0
    energy_per_byte_j: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("link name must be non-empty")
        if self.bandwidth_gbs <= 0:
            raise ValueError("bandwidth_gbs must be positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.energy_per_byte_j < 0:
            raise ValueError("energy_per_byte_j must be non-negative")

    def transfer_time(self, n_bytes: float) -> float:
        """Seconds needed to move ``n_bytes`` across the link (one message)."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_bytes == 0:
            return 0.0
        return self.latency_s + n_bytes / (self.bandwidth_gbs * 1e9)

    def transfer_energy(self, n_bytes: float) -> float:
        """Energy (J) consumed by moving ``n_bytes`` across the link."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        return self.energy_per_byte_j * n_bytes
