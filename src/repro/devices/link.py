"""Interconnect model between devices.

Offloading a task moves its inputs to the accelerator and its results back;
the :class:`LinkSpec` captures the bandwidth, latency and energy cost of that
movement.  Several canonical links (PCIe, USB, Wi-Fi, LTE, loopback) are
provided by :mod:`repro.devices.catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import costmodel

__all__ = ["LinkSpec"]


@dataclass(frozen=True)
class LinkSpec:
    """Point-to-point interconnect between two devices."""

    name: str
    bandwidth_gbs: float
    latency_s: float = 0.0
    energy_per_byte_j: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("link name must be non-empty")
        if self.bandwidth_gbs <= 0:
            raise ValueError("bandwidth_gbs must be positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.energy_per_byte_j < 0:
            raise ValueError("energy_per_byte_j must be non-negative")

    def transfer_time(self, n_bytes: "float | np.ndarray") -> "float | np.ndarray":
        """Seconds needed to move ``n_bytes`` across the link (one message).

        Accepts a scalar (returning a float, exactly as before) or an ndarray
        of byte counts (returning the elementwise transfer times) -- the
        vectorized form the condition-stacked table build batches over.
        """
        return costmodel.transfer_time(n_bytes, self.bandwidth_gbs, self.latency_s)

    def transfer_energy(self, n_bytes: "float | np.ndarray") -> "float | np.ndarray":
        """Energy (J) consumed by moving ``n_bytes`` across the link (broadcasts)."""
        return costmodel.transfer_energy(n_bytes, self.energy_per_byte_j)
