"""Simulated heterogeneous platform: devices, links, platforms, executors, energy."""

from .catalog import (
    PLATFORMS,
    cpu_gpu_platform,
    register_platform,
    edge_cluster_platform,
    edge_tpu_like,
    get_platform,
    gigabit_ethernet,
    lte,
    nvidia_p100,
    nvidia_p100_native,
    pcie_gen3,
    raspberry_gpu_platform,
    raspberry_pi_4,
    smartphone_cloud_platform,
    smartphone_soc,
    usb3,
    wifi_ac,
    xeon_8160_core,
)
from .batch import (
    BatchExecutionResult,
    ChainCostTables,
    GraphCostTables,
    build_cost_tables,
    execute_placements,
)
from .device import DeviceSpec
from .energy import EnergyBreakdown
from .grid import (
    GraphGridCostTables,
    GridCostTables,
    GridExecutionResult,
    execute_placements_grid,
)
from .host import HostExecutor
from .link import LinkSpec
from .platform import Platform
from .simulator import ExecutionRecord, SimulatedExecutor, TaskExecutionRecord
from .tables import CostTables, build_tables

__all__ = [
    "DeviceSpec",
    "LinkSpec",
    "Platform",
    "EnergyBreakdown",
    "SimulatedExecutor",
    "ExecutionRecord",
    "TaskExecutionRecord",
    "HostExecutor",
    "BatchExecutionResult",
    "ChainCostTables",
    "GraphCostTables",
    "build_cost_tables",
    "execute_placements",
    "GridCostTables",
    "GraphGridCostTables",
    "GridExecutionResult",
    "execute_placements_grid",
    "CostTables",
    "build_tables",
    # catalog
    "xeon_8160_core",
    "nvidia_p100",
    "raspberry_pi_4",
    "smartphone_soc",
    "edge_tpu_like",
    "pcie_gen3",
    "usb3",
    "wifi_ac",
    "lte",
    "gigabit_ethernet",
    "cpu_gpu_platform",
    "raspberry_gpu_platform",
    "smartphone_cloud_platform",
    "edge_cluster_platform",
    "PLATFORMS",
    "get_platform",
    "register_platform",
]
