"""Energy accounting for simulated executions.

The paper uses "FLOPs executed on the device" as its energy proxy; this module
adds an explicit physical-units model on top of it: every device draws its
active power while busy and its idle power while waiting for the rest of the
code, and every byte crossing a link costs the link's per-byte energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-device and transfer energy of one execution (all values in Joules)."""

    active_j: Mapping[str, float] = field(default_factory=dict)
    idle_j: Mapping[str, float] = field(default_factory=dict)
    transfer_j: float = 0.0

    def __post_init__(self) -> None:
        for mapping_name in ("active_j", "idle_j"):
            for device, value in getattr(self, mapping_name).items():
                if value < 0:
                    raise ValueError(f"{mapping_name}[{device!r}] must be non-negative")
        if self.transfer_j < 0:
            raise ValueError("transfer_j must be non-negative")

    def device_total(self, alias: str) -> float:
        """Total energy attributed to one device (active + idle)."""
        return self.active_j.get(alias, 0.0) + self.idle_j.get(alias, 0.0)

    @property
    def devices(self) -> list[str]:
        return sorted(set(self.active_j) | set(self.idle_j))

    @property
    def total_j(self) -> float:
        """Total energy of the execution across devices and transfers."""
        return (
            sum(self.active_j.values())
            + sum(self.idle_j.values())
            + self.transfer_j
        )

    def combined(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """Sum of two breakdowns (e.g. energy of consecutive code invocations)."""
        devices = set(self.devices) | set(other.devices)
        return EnergyBreakdown(
            active_j={
                d: self.active_j.get(d, 0.0) + other.active_j.get(d, 0.0) for d in devices
            },
            idle_j={d: self.idle_j.get(d, 0.0) + other.idle_j.get(d, 0.0) for d in devices},
            transfer_j=self.transfer_j + other.transfer_j,
        )
