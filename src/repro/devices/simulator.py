"""Analytic execution simulator for task chains on a heterogeneous platform.

Given a :class:`~repro.tasks.chain.TaskChain` and a placement (one device
alias per task), the simulator predicts the noise-free execution time, the
per-device busy times and FLOPs, the transferred bytes, the energy breakdown
and the operating cost, and can turn the noise-free estimate into a vector of
``N`` noisy measurements via a :class:`~repro.measurement.noise.NoiseModel` --
the stand-in for the paper's real CPU+GPU testbed (see DESIGN.md, substitution
table).

The timing model per task:

* the executing device pays its compute/launch time (:meth:`DeviceSpec.compute_time`);
* if the task is placed on a non-host device, the task's inputs are shipped to
  it and its outputs shipped back over the platform link, plus a one-time
  task-startup overhead on the device;
* consecutive tasks on different devices exchange the scalar penalty, paying
  one link latency.

Tasks are data-dependent (each consumes the previous task's penalty), so the
total time is simply the sum over tasks -- there is no overlap to exploit,
exactly as in Procedure 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..measurement.dataset import MeasurementSet
from ..measurement.noise import NoiseModel, default_system_noise
from ..tasks.chain import TaskChain
from .energy import EnergyBreakdown
from .platform import Platform

__all__ = ["TaskExecutionRecord", "ExecutionRecord", "SimulatedExecutor"]


@dataclass(frozen=True)
class TaskExecutionRecord:
    """Timing/energy attribution of a single task within one execution."""

    task_name: str
    device: str
    busy_time_s: float
    transfer_time_s: float
    transferred_bytes: float
    flops: float

    @property
    def total_time_s(self) -> float:
        return self.busy_time_s + self.transfer_time_s


@dataclass(frozen=True)
class ExecutionRecord:
    """Full accounting of one (noise-free) execution of a placed task chain."""

    placement: tuple[str, ...]
    tasks: tuple[TaskExecutionRecord, ...]
    total_time_s: float
    busy_time_by_device: Mapping[str, float]
    flops_by_device: Mapping[str, float]
    transferred_bytes: float
    energy: EnergyBreakdown
    operating_cost: float

    @property
    def label(self) -> str:
        """The algorithm label, e.g. ``"DDA"``."""
        return "".join(self.placement)

    def flops_on(self, alias: str) -> float:
        """FLOPs executed on one device (the paper's energy proxy for that device)."""
        return self.flops_by_device.get(alias, 0.0)

    def busy_fraction(self, alias: str) -> float:
        """Fraction of the total execution during which the device is busy."""
        if self.total_time_s == 0:
            return 0.0
        return self.busy_time_by_device.get(alias, 0.0) / self.total_time_s


@dataclass
class SimulatedExecutor:
    """Execute task chains analytically on a simulated platform.

    Parameters
    ----------
    platform:
        The heterogeneous platform (devices + links).
    noise:
        Noise model applied when generating measurement vectors; defaults to
        the calibrated system-noise composite.
    seed:
        Seed of the measurement-noise generator.
    """

    platform: Platform
    noise: NoiseModel = field(default_factory=default_system_noise)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def _normalise_placement(self, chain: TaskChain, placement: Sequence[str] | str) -> tuple[str, ...]:
        aliases = tuple(placement)
        if len(aliases) != len(chain):
            raise ValueError(
                f"placement {aliases!r} has {len(aliases)} entries but the chain has {len(chain)} tasks"
            )
        self.platform.validate_aliases(aliases)
        return aliases

    def execute(self, chain: TaskChain, placement: Sequence[str] | str) -> ExecutionRecord:
        """Noise-free execution record of the chain under the given placement."""
        aliases = self._normalise_placement(chain, placement)
        host = self.platform.host

        task_records: list[TaskExecutionRecord] = []
        busy: dict[str, float] = {alias: 0.0 for alias in self.platform.devices}
        flops: dict[str, float] = {alias: 0.0 for alias in self.platform.devices}
        transferred = 0.0
        transfer_energy = 0.0
        total_time = 0.0
        previous_device = host

        for task, alias in zip(chain, aliases):
            cost = task.cost()
            device = self.platform.device(alias)
            busy_time = device.compute_time(cost)

            transfer_time = 0.0
            task_bytes = 0.0
            if alias != host:
                # Inputs travel host -> device, results device -> host.
                transfer_time += self.platform.transfer_time(host, alias, cost.input_bytes)
                transfer_time += self.platform.transfer_time(alias, host, cost.output_bytes)
                transfer_energy += self.platform.transfer_energy(host, alias, cost.input_bytes)
                transfer_energy += self.platform.transfer_energy(alias, host, cost.output_bytes)
                task_bytes += cost.transferred_bytes
                busy_time += device.task_startup_overhead_s
            if alias != previous_device:
                # The scalar penalty produced by the previous task crosses devices,
                # travelling the direct previous->current link: device-to-device
                # transfers are not staged through the host.
                penalty_bytes = 8.0
                transfer_time += self.platform.transfer_time(previous_device, alias, penalty_bytes)
                transfer_energy += self.platform.transfer_energy(previous_device, alias, penalty_bytes)
                task_bytes += penalty_bytes

            busy[alias] += busy_time
            flops[alias] += cost.flops
            transferred += task_bytes
            total_time += busy_time + transfer_time
            previous_device = alias
            task_records.append(
                TaskExecutionRecord(
                    task_name=task.name,
                    device=alias,
                    busy_time_s=busy_time,
                    transfer_time_s=transfer_time,
                    transferred_bytes=task_bytes,
                    flops=cost.flops,
                )
            )

        active = {alias: self.platform.device(alias).active_energy(busy[alias]) for alias in busy}
        idle = {
            alias: self.platform.device(alias).idle_energy(max(total_time - busy[alias], 0.0))
            for alias in busy
        }
        energy = EnergyBreakdown(active_j=active, idle_j=idle, transfer_j=transfer_energy)
        cost_total = sum(
            self.platform.device(alias).operating_cost(busy[alias]) for alias in busy
        )
        return ExecutionRecord(
            placement=aliases,
            tasks=tuple(task_records),
            total_time_s=total_time,
            busy_time_by_device=busy,
            flops_by_device=flops,
            transferred_bytes=transferred,
            energy=energy,
            operating_cost=cost_total,
        )

    # ------------------------------------------------------------------
    def measure(
        self,
        chain: TaskChain,
        placement: Sequence[str] | str,
        repetitions: int = 30,
    ) -> np.ndarray:
        """Vector of ``repetitions`` noisy execution-time measurements."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        record = self.execute(chain, placement)
        return self.noise(record.total_time_s, repetitions, self._rng)

    def measure_all(
        self,
        chain: TaskChain,
        placements: Iterable[Sequence[str] | str],
        repetitions: int = 30,
    ) -> MeasurementSet:
        """Measure several placements and return a labelled measurement set."""
        measurements = MeasurementSet(metric="execution time", unit="s")
        for placement in placements:
            label = "".join(placement)
            measurements.add(label, self.measure(chain, placement, repetitions))
        return measurements

    def energy_measure(
        self,
        chain: TaskChain,
        placement: Sequence[str] | str,
        repetitions: int = 30,
    ) -> np.ndarray:
        """Vector of noisy *energy* measurements (J) for the placed chain."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        record = self.execute(chain, placement)
        return self.noise(record.energy.total_j, repetitions, self._rng)
