"""Analytic execution simulator for task chains on a heterogeneous platform.

Given a :class:`~repro.tasks.chain.TaskChain` and a placement (one device
alias per task), the simulator predicts the noise-free execution time, the
per-device busy times and FLOPs, the transferred bytes, the energy breakdown
and the operating cost, and can turn the noise-free estimate into a vector of
``N`` noisy measurements via a :class:`~repro.measurement.noise.NoiseModel` --
the stand-in for the paper's real CPU+GPU testbed (see DESIGN.md, substitution
table).

The timing model per task:

* the executing device pays its compute/launch time (:meth:`DeviceSpec.compute_time`);
* if the task is placed on a non-host device, the task's inputs are shipped to
  it and its outputs shipped back over the platform link, plus a one-time
  task-startup overhead on the device;
* consecutive tasks on different devices exchange the scalar penalty, paying
  one link latency.

Tasks are data-dependent (each consumes the previous task's penalty), so the
total time is simply the sum over tasks -- there is no overlap to exploit,
exactly as in Procedure 5 of the paper.

For DAG workloads (:class:`~repro.tasks.graph.TaskGraph`),
:meth:`SimulatedExecutor.execute_graph` generalizes the model: a task starts
once its slowest predecessor finished *and* its device is free (tasks sharing
a device serialize in topological order; parallel branches on different
devices overlap, so the total time is the critical path through the schedule),
fan-in joins pay one penalty hop per incoming edge, and source tasks are fed
from the host like a chain's first task.  On a linear graph every rule
degenerates to the chain rule and the record is bitwise identical to
:meth:`SimulatedExecutor.execute`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..cache import CacheStats, TableCache, cached_fingerprint, table_key
from ..measurement.dataset import MeasurementSet
from ..measurement.noise import NoiseModel, default_system_noise
from ..tasks.chain import TaskChain
from ..tasks.graph import TaskGraph
from .costmodel import (
    PENALTY_MESSAGE_BYTES,
    finalize_execution,
    join_penalty_cost,
    penalty_cost,
    task_device_cost,
)
from .energy import EnergyBreakdown
from .platform import Platform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (batch imports us)
    from .batch import BatchExecutionResult, ChainCostTables

__all__ = [
    "PENALTY_MESSAGE_BYTES",
    "TaskExecutionRecord",
    "ExecutionRecord",
    "SimulatedExecutor",
]


@dataclass(frozen=True)
class TaskExecutionRecord:
    """Timing/energy attribution of a single task within one execution."""

    task_name: str
    device: str
    busy_time_s: float
    transfer_time_s: float
    transferred_bytes: float
    flops: float

    @property
    def total_time_s(self) -> float:
        return self.busy_time_s + self.transfer_time_s


@dataclass(frozen=True)
class ExecutionRecord:
    """Full accounting of one (noise-free) execution of a placed task chain."""

    placement: tuple[str, ...]
    tasks: tuple[TaskExecutionRecord, ...]
    total_time_s: float
    busy_time_by_device: Mapping[str, float]
    flops_by_device: Mapping[str, float]
    transferred_bytes: float
    energy: EnergyBreakdown
    operating_cost: float

    @property
    def label(self) -> str:
        """The algorithm label, e.g. ``"DDA"``."""
        return "".join(self.placement)

    def flops_on(self, alias: str) -> float:
        """FLOPs executed on one device (the paper's energy proxy for that device)."""
        return self.flops_by_device.get(alias, 0.0)

    def busy_fraction(self, alias: str) -> float:
        """Fraction of the total execution during which the device is busy."""
        if self.total_time_s == 0:
            return 0.0
        return self.busy_time_by_device.get(alias, 0.0) / self.total_time_s


@dataclass
class SimulatedExecutor:
    """Execute task chains analytically on a simulated platform.

    Parameters
    ----------
    platform:
        The heterogeneous platform (devices + links).
    noise:
        Noise model applied when generating measurement vectors; defaults to
        the calibrated system-noise composite.
    seed:
        Seed of the measurement-noise generator.
    cache_executions:
        Keep a shared cache of (workload, placement) -> record, so measuring
        and profiling the same algorithm space no longer executes every chain
        twice.  Records are deterministic functions of the (immutable)
        platform, chain and placement, so caching never changes results.
    execution_cache_size:
        Maximum number of execution records kept (least-recently-used records
        beyond the cap are evicted).
    table_cache:
        The content-addressed :class:`~repro.cache.TableCache` cost tables
        are served from.  Pass a shared instance to pool tables across
        executors (the service layer does); defaults to a private cache.

    Both caches are keyed by content fingerprints (:mod:`repro.cache`), so
    structurally equal workloads share entries across object identities and
    neither cache keeps the workload objects themselves alive.
    """

    platform: Platform
    noise: NoiseModel = field(default_factory=default_system_noise)
    seed: int = 0
    cache_executions: bool = True
    execution_cache_size: int = 4096
    table_cache: TableCache | None = None

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._record_cache = TableCache(max_entries=max(1, self.execution_cache_size))
        if self.table_cache is None:
            self.table_cache = TableCache()

    # ------------------------------------------------------------------
    def _normalise_placement(self, chain: TaskChain, placement: Sequence[str] | str) -> tuple[str, ...]:
        aliases = tuple(placement)
        if len(aliases) != len(chain):
            raise ValueError(
                f"placement {aliases!r} has {len(aliases)} entries but chain "
                f"{chain.name!r} has {len(chain)} tasks "
                f"(available devices: {sorted(self.platform.devices)})"
            )
        try:
            self.platform.validate_aliases(aliases)
        except KeyError as exc:
            raise KeyError(
                f"placement {aliases!r} for chain {chain.name!r} uses "
                f"{exc.args[0] if exc.args else 'unknown aliases'}"
            ) from exc
        return aliases

    def execute(
        self, chain: TaskChain | TaskGraph, placement: Sequence[str] | str
    ) -> ExecutionRecord:
        """Noise-free execution record of the workload under the given placement.

        Records are served from the shared execution cache when enabled, so
        measuring and profiling the same placement executes the chain once.
        A :class:`TaskGraph` duck-types the chain protocol, but chain
        semantics would silently serialize it (and poison the shared record
        cache); graphs route to :meth:`execute_graph` instead, which also
        makes :meth:`measure` / :meth:`measure_all` / :meth:`energy_measure`
        graph-aware.
        """
        if isinstance(chain, TaskGraph):
            return self.execute_graph(chain, placement)
        aliases = self._normalise_placement(chain, placement)
        if not self.cache_executions:
            return self._execute_uncached(chain, aliases)
        key = ("chain", cached_fingerprint(chain), aliases)
        return self._record_cache.get_or_build(
            key, lambda: self._execute_uncached(chain, aliases)
        )

    def clear_execution_cache(self) -> dict[str, int]:
        """Drop every cached execution record and cost table.

        Returns how many entries were dropped from each cache, e.g.
        ``{"records": 12, "tables": 3}``.
        """
        return {
            "records": self._record_cache.clear(),
            "tables": self.table_cache.clear(),
        }

    def cache_stats(self) -> dict[str, CacheStats]:
        """Hit/miss/eviction counters of the record and table caches."""
        return {
            "records": self._record_cache.stats(),
            "tables": self.table_cache.stats(),
        }

    def _execute_uncached(self, chain: TaskChain, aliases: tuple[str, ...]) -> ExecutionRecord:
        host = self.platform.host

        task_records: list[TaskExecutionRecord] = []
        busy: dict[str, float] = {alias: 0.0 for alias in self.platform.devices}
        flops: dict[str, float] = {alias: 0.0 for alias in self.platform.devices}
        transferred = 0.0
        transfer_energy = 0.0
        total_time = 0.0
        previous_device = host

        for task, alias in zip(chain, aliases):
            cost = task.cost()
            # Shared cost model: busy time (incl. startup), host I/O shipping
            # (inputs host -> device, results device -> host), and the scalar
            # penalty crossing the direct previous->current link (device-to-
            # device transfers are not staged through the host).
            device_cost = task_device_cost(self.platform, cost, alias)
            hop = penalty_cost(self.platform, previous_device, alias)
            busy_time = device_cost.busy_s
            transfer_time = device_cost.hostio_time_s + hop.time_s
            task_bytes = device_cost.hostio_bytes + hop.n_bytes
            transfer_energy += device_cost.energy_in_j
            transfer_energy += device_cost.energy_out_j
            transfer_energy += hop.energy_j

            busy[alias] += busy_time
            flops[alias] += cost.flops
            transferred += task_bytes
            total_time += busy_time + transfer_time
            previous_device = alias
            task_records.append(
                TaskExecutionRecord(
                    task_name=task.name,
                    device=alias,
                    busy_time_s=busy_time,
                    transfer_time_s=transfer_time,
                    transferred_bytes=task_bytes,
                    flops=cost.flops,
                )
            )

        energy, cost_total = finalize_execution(self.platform, busy, total_time, transfer_energy)
        return ExecutionRecord(
            placement=aliases,
            tasks=tuple(task_records),
            total_time_s=total_time,
            busy_time_by_device=busy,
            flops_by_device=flops,
            transferred_bytes=transferred,
            energy=energy,
            operating_cost=cost_total,
        )

    # -- DAG workloads --------------------------------------------------
    def _normalise_graph_placement(
        self, graph: TaskGraph, placement: Sequence[str] | str | Mapping[str, str]
    ) -> tuple[str, ...]:
        if isinstance(placement, Mapping):
            aliases = graph.placement_for(placement)
        else:
            aliases = tuple(placement)
        if len(aliases) != len(graph):
            raise ValueError(
                f"placement {aliases!r} has {len(aliases)} entries but graph "
                f"{graph.name!r} has {len(graph)} tasks "
                f"(topological order: {graph.task_names}; "
                f"available devices: {sorted(self.platform.devices)})"
            )
        try:
            self.platform.validate_aliases(aliases)
        except KeyError as exc:
            raise KeyError(
                f"placement {aliases!r} for graph {graph.name!r} uses "
                f"{exc.args[0] if exc.args else 'unknown aliases'}"
            ) from exc
        return aliases

    def execute_graph(
        self, graph: TaskGraph, placement: Sequence[str] | str | Mapping[str, str]
    ) -> ExecutionRecord:
        """Noise-free execution record of a DAG workload under one placement.

        ``placement`` aligns with the graph's topological order (an alias
        sequence or label string), or maps task names to aliases.  The
        sequential reference implementation of the DAG model: critical-path
        latency (a task starts when its slowest predecessor finished and its
        device is free -- same-device tasks serialize in topological order),
        per-edge penalty hops summed at fan-in joins, host feed for source
        tasks, and the chain's per-task busy/host-I/O accounting unchanged.
        Bitwise identical to :meth:`execute` on linear graphs, and the ground
        truth the vectorized graph engine is pinned against.
        """
        aliases = self._normalise_graph_placement(graph, placement)
        if not self.cache_executions:
            return self._execute_graph_uncached(graph, aliases)
        key = ("graph", cached_fingerprint(graph), aliases)
        return self._record_cache.get_or_build(
            key, lambda: self._execute_graph_uncached(graph, aliases)
        )

    def _execute_graph_uncached(self, graph: TaskGraph, aliases: tuple[str, ...]) -> ExecutionRecord:
        host = self.platform.host

        task_records: list[TaskExecutionRecord] = []
        busy: dict[str, float] = {alias: 0.0 for alias in self.platform.devices}
        flops: dict[str, float] = {alias: 0.0 for alias in self.platform.devices}
        transferred = 0.0
        transfer_energy = 0.0
        total_time = 0.0
        finish: list[float] = []
        available: dict[str, float] = {alias: 0.0 for alias in self.platform.devices}

        for pos, (task, alias) in enumerate(zip(graph, aliases)):
            cost = task.cost()
            device_cost = task_device_cost(self.platform, cost, alias)
            preds = graph.predecessor_positions[pos]
            if preds:
                # Fan-in join: one penalty hop per incoming edge, folded in
                # canonical edge order.
                hop = join_penalty_cost(
                    self.platform, [aliases[p] for p in preds], alias
                )
            else:
                # Source task: inputs originate on the host, like a chain's
                # first task.
                hop = penalty_cost(self.platform, host, alias)
            ready = 0.0
            for p in preds:
                ready = max(ready, finish[p])
            # Device serialization: the task also waits until the previous
            # task scheduled on its device finished.  In a linear graph the
            # device never lags behind the predecessor, so this never moves
            # the chain result.
            start = max(ready, available[alias])

            busy_time = device_cost.busy_s
            transfer_time = device_cost.hostio_time_s + hop.time_s
            task_bytes = device_cost.hostio_bytes + hop.n_bytes
            transfer_energy += device_cost.energy_in_j
            transfer_energy += device_cost.energy_out_j
            transfer_energy += hop.energy_j

            busy[alias] += busy_time
            flops[alias] += cost.flops
            transferred += task_bytes
            end = start + (busy_time + transfer_time)
            finish.append(end)
            available[alias] = end
            total_time = max(total_time, end)
            task_records.append(
                TaskExecutionRecord(
                    task_name=task.name,
                    device=alias,
                    busy_time_s=busy_time,
                    transfer_time_s=transfer_time,
                    transferred_bytes=task_bytes,
                    flops=cost.flops,
                )
            )

        energy, cost_total = finalize_execution(self.platform, busy, total_time, transfer_energy)
        return ExecutionRecord(
            placement=aliases,
            tasks=tuple(task_records),
            total_time_s=total_time,
            busy_time_by_device=busy,
            flops_by_device=flops,
            transferred_bytes=transferred,
            energy=energy,
            operating_cost=cost_total,
        )

    # ------------------------------------------------------------------
    def measure(
        self,
        chain: TaskChain | TaskGraph,
        placement: Sequence[str] | str,
        repetitions: int = 30,
    ) -> np.ndarray:
        """Vector of ``repetitions`` noisy execution-time measurements."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        record = self.execute(chain, placement)
        return self.noise(record.total_time_s, repetitions, self._rng)

    def measure_all(
        self,
        chain: TaskChain | TaskGraph,
        placements: Iterable[Sequence[str] | str],
        repetitions: int = 30,
    ) -> MeasurementSet:
        """Measure several placements and return a labelled measurement set."""
        measurements = MeasurementSet(metric="execution time", unit="s")
        for placement in placements:
            label = "".join(placement)
            measurements.add(label, self.measure(chain, placement, repetitions))
        return measurements

    def energy_measure(
        self,
        chain: TaskChain | TaskGraph,
        placement: Sequence[str] | str,
        repetitions: int = 30,
    ) -> np.ndarray:
        """Vector of noisy *energy* measurements (J) for the placed chain."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        record = self.execute(chain, placement)
        return self.noise(record.energy.total_j, repetitions, self._rng)

    # -- batch engine ---------------------------------------------------
    @staticmethod
    def _check_fault_args(retry, faults, timeout) -> None:
        from .tables import check_fault_args

        check_fault_args(retry, faults, timeout)

    def cost_tables(
        self,
        chain: TaskChain | TaskGraph,
        devices: Sequence[str] | None = None,
        *,
        faults=None,
        retry=None,
        timeout=None,
    ) -> "ChainCostTables":
        """Precomputed (cached) cost tables of a workload on this platform.

        ``chain`` may be a :class:`TaskChain` or a :class:`TaskGraph`; graphs
        yield :class:`~repro.devices.batch.GraphCostTables`, which every batch
        entry point below routes through the DAG engine automatically.  With
        ``retry=`` given, returns fault-augmented
        :class:`~repro.faults.tables.FaultChainCostTables` instead (``faults``
        defaulting to the platform's attached profile).

        Tables come from :func:`repro.devices.tables.build_tables` and are
        served from the executor's content-addressed :attr:`table_cache`, so
        a structurally equal configuration never rebuilds.
        """
        from .tables import build_tables

        self._check_fault_args(retry, faults, timeout)
        key = table_key(
            chain, self.platform, devices=devices, faults=faults, retry=retry, timeout=timeout
        )
        return self.table_cache.get_or_build(
            key,
            lambda: build_tables(
                chain, self.platform, devices=devices, faults=faults, retry=retry, timeout=timeout
            ),
        )

    def grid_cost_tables(
        self,
        chain: TaskChain | TaskGraph,
        scenarios,
        devices: Sequence[str] | None = None,
        *,
        faults=None,
        retry=None,
        timeout=None,
    ):
        """Cached condition-stacked tables of a workload over a scenario grid.

        ``scenarios`` is a :class:`~repro.scenarios.grid.ScenarioGrid`, a
        sequence of :class:`~repro.scenarios.conditions.Scenario` points, or a
        sequence of already-derived :class:`Platform` objects.  Returns
        :class:`~repro.devices.grid.GridCostTables`
        (:class:`~repro.faults.tables.FaultGridCostTables` with ``retry=``),
        served from the same content-addressed :attr:`table_cache` as
        :meth:`cost_tables` -- a sweep over scenarios rebuilds only what
        changed.  Scenario-driven builds route through the fused array-space
        path and reuse :attr:`table_cache` for per-scenario condition slices,
        so overlapping grids share slice work too.
        """
        from .tables import build_tables

        self._check_fault_args(retry, faults, timeout)
        platform_arg, scenario_arg = self.platform, scenarios
        if not hasattr(scenarios, "platforms"):
            from ..scenarios.grid import ScenarioGrid

            seq = list(scenarios)
            if seq and isinstance(seq[0], Platform):
                platform_arg, scenario_arg = seq, None
            else:
                scenario_arg = ScenarioGrid(tuple(seq))
        key = table_key(
            chain,
            platform_arg,
            devices=devices,
            scenarios=scenario_arg,
            faults=faults,
            retry=retry,
            timeout=timeout,
        )
        return self.table_cache.get_or_build(
            key,
            lambda: build_tables(
                chain,
                platform_arg,
                devices=devices,
                scenarios=scenario_arg,
                faults=faults,
                retry=retry,
                timeout=timeout,
                slice_cache=self.table_cache,
            ),
        )

    def update_grid_tables(self, tables, replacements: Mapping[int, object]):
        """Delta-rebuild grid tables after swapping out some scenarios.

        ``replacements`` maps scenario indices (negative indices count from
        the end) to their new :class:`~repro.scenarios.conditions.Scenario`
        definitions.  Only the affected condition slices are recomputed --
        unchanged slices (and replacement slices seen before) are served from
        :attr:`table_cache` by content fingerprint -- and the rebuilt tables
        are registered in the cache under their new fingerprint, so a later
        :meth:`grid_cost_tables` call with the updated grid is a cache hit.
        """
        updated = tables.updated_many(replacements, slice_cache=self.table_cache)
        if updated is not tables and updated.fingerprint:
            self.table_cache.put(updated.fingerprint, updated)
        return updated

    def plan(
        self,
        chain: TaskChain | TaskGraph,
        objective="time",
        devices: Sequence[str] | None = None,
        *,
        scenarios=None,
        method: str = "auto",
        **options,
    ):
        """Provably-optimal placement of a workload, without enumerating ``m**k``.

        Delegates to :func:`repro.search.planner.plan_workload` -- a Viterbi
        DP over the ``(task, device)`` lattice, ``O(k * m**2)`` for chains --
        or, when ``scenarios`` is given, to
        :func:`repro.search.planner.plan_grid`, the exact robust planner over
        a scenario grid.  ``objective`` is a metric name, a search
        :class:`~repro.search.objectives.Objective`, or (with scenarios) a
        :class:`~repro.search.robust.RobustObjective`.  Extra keyword options
        (``max_level_states``, ``fallback_limit``, ``max_labels``) pass
        through to the planner.
        """
        from ..search.planner import plan_grid, plan_workload

        if scenarios is not None:
            return plan_grid(self, chain, scenarios, objective, devices=devices, **options)
        return plan_workload(
            self, chain, objective, devices=devices, method=method, **options
        )

    def execute_batch(
        self,
        chain: TaskChain | TaskGraph,
        placements: np.ndarray | Iterable[Sequence[str] | str] | None = None,
        devices: Sequence[str] | None = None,
        *,
        faults=None,
        retry=None,
        timeout=None,
    ) -> "BatchExecutionResult":
        """Evaluate many placements of one workload in a single vectorized pass.

        ``placements`` is an ``(n_placements, n_tasks)`` device-index matrix
        (see :func:`repro.offload.space.placement_matrix`), any iterable of
        placements in the spellings :meth:`execute` accepts, or ``None`` for
        the full ``m**k`` space in lexicographic order.  Every array field of
        the result is bitwise identical to the sequential :meth:`execute`
        (:meth:`execute_graph` for :class:`TaskGraph` workloads).  With
        ``retry=`` given the pass evaluates *expected* costs under faults
        instead (see :func:`repro.faults.engine.execute_fault_placements`),
        pinned the same way to :func:`repro.faults.engine.expected_record`.
        """
        from .batch import execute_placements

        tables = self.cost_tables(chain, devices, faults=faults, retry=retry, timeout=timeout)
        if placements is None:
            from ..offload.space import placement_matrix

            placements = placement_matrix(tables.n_tasks, len(tables.aliases))
        if retry is not None:
            from ..faults.engine import execute_fault_placements

            return execute_fault_placements(tables, placements)
        return execute_placements(tables, placements)

    def iter_execute_batches(
        self,
        chain: TaskChain | TaskGraph,
        devices: Sequence[str] | None = None,
        batch_size: int = 65536,
        start: int = 0,
        stop: int | None = None,
        *,
        faults=None,
        retry=None,
        timeout=None,
    ) -> Iterator["BatchExecutionResult"]:
        """Stream a placement-space range in lexicographic chunks.

        Bounds peak memory to ``O(batch_size * n_tasks)`` so spaces far beyond
        what fits in RAM (the paper's combinatorial-explosion regime) can be
        scanned incrementally.  ``start``/``stop`` (defaulting to the whole
        ``m**k`` space) select the half-open placement-index range to stream,
        which is how :func:`repro.search.search_space` shards one sweep across
        worker processes.  Works for chains and graphs alike, and with
        ``retry=`` given streams expected-cost-under-faults batches.
        """
        from .batch import execute_placements
        from ..offload.space import iter_placement_batches

        tables = self.cost_tables(chain, devices, faults=faults, retry=retry, timeout=timeout)
        if retry is not None:
            from ..faults.engine import execute_fault_placements as run
        else:
            run = execute_placements
        for matrix in iter_placement_batches(
            tables.n_tasks, len(tables.aliases), batch_size, start=start, stop=stop
        ):
            yield run(tables, matrix)

    # -- fault-aware entry points ---------------------------------------
    def execute_with_faults(
        self,
        chain: TaskChain | TaskGraph,
        placement: Sequence[str] | str,
        *,
        retry,
        faults=None,
        timeout=None,
        devices: Sequence[str] | None = None,
    ):
        """Analytic expected-cost record of one placement under faults.

        The closed-form counterpart of :meth:`simulate_with_faults`: success
        probability, expected attempts and success-conditional expected
        time/energy/cost of the placed workload under the fault profile
        (``faults`` defaults to the platform's attached profile) with the
        given retry/timeout semantics.  Returns an
        :class:`~repro.faults.engine.ExpectedFaultRecord`.
        """
        from ..faults.engine import expected_record

        tables = self.cost_tables(chain, devices, faults=faults, retry=retry, timeout=timeout)
        return expected_record(tables, tuple(placement))

    def simulate_with_faults(
        self,
        chain: TaskChain,
        placement: Sequence[str] | str,
        *,
        retry,
        faults=None,
        timeout=None,
        rng: np.random.Generator | None = None,
    ):
        """Sample one fault-injected execution trace of a placed chain.

        Monte-Carlo counterpart of :meth:`execute_with_faults` (chain-only:
        the analytic DAG path is a deterministic-equivalent approximation
        with no per-trial trace to sample).  ``rng`` defaults to the
        executor's measurement-noise generator, so repeated calls draw fresh
        trials.  Returns a
        :class:`~repro.faults.simulate.FaultSimulationRecord`.
        """
        from ..faults.simulate import simulate_chain_with_faults

        if isinstance(chain, TaskGraph):
            raise ValueError(
                "simulate_with_faults is chain-only: the analytic DAG path is a "
                "deterministic-equivalent approximation with no per-trial trace "
                "to sample; use execute_with_faults for graphs"
            )
        return simulate_chain_with_faults(
            self.platform,
            chain,
            tuple(placement),
            retry=retry,
            faults=faults,
            timeout=timeout,
            rng=rng if rng is not None else self._rng,
        )

    def measure_batch(
        self,
        batch: "BatchExecutionResult",
        repetitions: int = 30,
        metric: str = "time",
        rng_mode: str = "sequential",
    ) -> MeasurementSet:
        """Noisy measurement set for every placement of a batch execution.

        ``rng_mode="sequential"`` (default) draws the noise per algorithm in
        the same order as the per-placement :meth:`measure` loop, making the
        resulting set **bit-for-bit identical** to it under the same seed.
        ``rng_mode="batched"`` draws each noise stage once over the whole
        ``(n_placements, repetitions)`` matrix -- same distribution, different
        random stream, and much faster for very large spaces.
        """
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        units = {"time": ("execution time", "s"), "energy": ("energy", "J")}
        if metric not in units:
            raise ValueError(f"unknown metric {metric!r}; choose 'time' or 'energy'")
        bases = batch.metric_values(metric)
        set_metric, unit = units[metric]
        if rng_mode == "sequential":
            noise, rng = self.noise, self._rng
            values = np.empty((len(batch), repetitions))
            for i, base in enumerate(bases.tolist()):
                values[i] = noise(base, repetitions, rng)
        elif rng_mode == "batched":
            values = self.noise.sample_many(bases, repetitions, self._rng)
        else:
            raise ValueError(f"unknown rng_mode {rng_mode!r}; choose 'sequential' or 'batched'")
        return MeasurementSet.from_matrix(batch.labels(), values, metric=set_metric, unit=unit)

    def measure_all_batch(
        self,
        chain: TaskChain | TaskGraph,
        placements: np.ndarray | Iterable[Sequence[str] | str] | None = None,
        repetitions: int = 30,
        metric: str = "time",
        devices: Sequence[str] | None = None,
        rng_mode: str = "sequential",
    ) -> MeasurementSet:
        """Batched equivalent of :meth:`measure_all` (see :meth:`measure_batch`).

        With the default ``rng_mode="sequential"`` the returned set is
        bit-for-bit identical to calling :meth:`measure_all` on the same
        placements with the same seed.
        """
        batch = self.execute_batch(chain, placements, devices=devices)
        return self.measure_batch(batch, repetitions=repetitions, metric=metric, rng_mode=rng_mode)
