"""Analytic device model.

A :class:`DeviceSpec` captures the handful of parameters that determine how
long a dense-linear-algebra task takes on a device and how much energy it
draws while doing so:

* ``peak_gflops`` -- asymptotic double-precision throughput;
* ``half_saturation_flops`` -- kernel size (in FLOPs) at which the device
  reaches half of its peak.  Accelerators need large kernels to saturate
  (occupancy); a small solve on a GPU runs far below peak, which is exactly
  why offloading the small MathTasks of Table I does not pay off;
* ``kernel_launch_overhead_s`` -- fixed cost per kernel launch (dispatch,
  driver, framework overhead);
* ``task_startup_overhead_s`` -- one-time cost of steering a task to this
  device (context creation, allocator warm-up) paid once per task placed on a
  non-host device;
* ``memory_bandwidth_gbs`` -- device memory bandwidth, bounding memory-bound
  kernels through a simple roofline;
* ``power_active_w`` / ``power_idle_w`` -- power draw while busy / idle;
* ``cost_per_hour`` -- operating cost of the device (Section IV's
  "operating cost involved in executing the code on the accelerator").

The execution-time model for a task with cost profile ``c`` is::

    kernel_flops  = c.flops / c.kernel_calls
    compute_time  = c.kernel_calls * (kernel_flops + half_saturation) / peak
    memory_time   = c.kernel_calls * c.working_set_bytes / memory_bandwidth
    busy_time     = max(compute_time, memory_time) + c.kernel_calls * launch_overhead

which reduces to the familiar roofline for large kernels and to a
launch/occupancy-bound regime for small ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tasks.task import TaskCost
from . import costmodel

__all__ = ["DeviceSpec"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one computing device."""

    name: str
    kind: str = "cpu"
    peak_gflops: float = 50.0
    half_saturation_flops: float = 1e6
    memory_bandwidth_gbs: float = 50.0
    kernel_launch_overhead_s: float = 2e-6
    task_startup_overhead_s: float = 0.0
    power_active_w: float = 50.0
    power_idle_w: float = 5.0
    cost_per_hour: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("device name must be non-empty")
        positive = {
            "peak_gflops": self.peak_gflops,
            "memory_bandwidth_gbs": self.memory_bandwidth_gbs,
        }
        for field_name, value in positive.items():
            if value <= 0:
                raise ValueError(f"{field_name} must be positive")
        non_negative = {
            "half_saturation_flops": self.half_saturation_flops,
            "kernel_launch_overhead_s": self.kernel_launch_overhead_s,
            "task_startup_overhead_s": self.task_startup_overhead_s,
            "power_active_w": self.power_active_w,
            "power_idle_w": self.power_idle_w,
            "cost_per_hour": self.cost_per_hour,
        }
        for field_name, value in non_negative.items():
            if value < 0:
                raise ValueError(f"{field_name} must be non-negative")

    # ------------------------------------------------------------------
    def effective_gflops(self, kernel_flops: float) -> float:
        """Throughput actually achieved on a kernel of the given size.

        Follows a Michaelis-Menten-style saturation curve: tiny kernels run at
        a small fraction of peak, kernels much larger than
        ``half_saturation_flops`` approach peak.
        """
        if kernel_flops <= 0:
            raise ValueError("kernel_flops must be positive")
        return self.peak_gflops * kernel_flops / (kernel_flops + self.half_saturation_flops)

    def compute_time(self, cost: TaskCost) -> float:
        """Pure execution (busy) time of a task on this device, excluding transfers.

        Thin facade over :func:`repro.devices.costmodel.busy_time`, the single
        source of the roofline-with-saturation formula (shared with the
        vectorized scenario-grid table build).
        """
        return float(
            costmodel.busy_time(
                cost.flops,
                cost.kernel_calls,
                cost.working_set_bytes,
                self.peak_gflops,
                self.half_saturation_flops,
                self.memory_bandwidth_gbs,
                self.kernel_launch_overhead_s,
            )
        )

    def active_energy(self, busy_seconds: float) -> float:
        """Energy (J) drawn while executing for ``busy_seconds``."""
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be non-negative")
        return self.power_active_w * busy_seconds

    def idle_energy(self, idle_seconds: float) -> float:
        """Energy (J) drawn while idling for ``idle_seconds``."""
        if idle_seconds < 0:
            raise ValueError("idle_seconds must be non-negative")
        return self.power_idle_w * idle_seconds

    def operating_cost(self, busy_seconds: float) -> float:
        """Monetary operating cost of keeping the device busy for ``busy_seconds``."""
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be non-negative")
        return self.cost_per_hour * busy_seconds / 3600.0
