"""Single source of truth for the per-(task, device) execution-cost math.

Three layers of the repo used to carry their own copy of the same arithmetic:
``DeviceSpec.compute_time`` / ``LinkSpec.transfer_time`` held the scalar
formulas, ``SimulatedExecutor.execute`` aggregated them per task, and
``ChainCostTables.build`` re-derived the identical per-(task, device) values
for the batch engine.  This module owns the math once, in three tiers:

* **formula functions** (:func:`busy_time`, :func:`transfer_time`,
  :func:`transfer_energy`) -- NumPy-broadcasting implementations of the device
  roofline and link models.  Scalars in, Python floats out; arrays in, arrays
  out, elementwise **bitwise identical** to the scalar evaluation (every
  operation is the same IEEE-754 expression, applied elementwise).  This is
  what lets the scenario-grid table build vectorize across condition points
  without drifting a single ulp from the per-platform scalar build.
* **per-task helpers** (:func:`task_device_cost`, :func:`penalty_cost`,
  :func:`join_penalty_cost`) -- the aggregation shared by the sequential
  executors and the cost-table builds: busy time plus startup overhead,
  host<->device input/output shipping, and the scalar-penalty hop(s) crossing
  device boundaries.  For DAG workloads the accounting is **per edge**: a
  fan-in join pays one penalty hop per incoming edge (summed left in edge
  order by :func:`join_penalty_cost`), while a fan-out producer ships its
  results back to the host once -- successors read the already-uploaded
  penalty, they do not repeat the upload.
* **finalization** (:func:`finalize_execution`) -- the per-device
  active/idle-energy and operating-cost accounting shared by
  ``SimulatedExecutor.execute`` and ``BatchExecutionResult.record``.

Accumulation order is part of the contract: callers fold these values left in
task order, and the helpers perform exactly the additions the historical
inline code performed (e.g. host I/O time is one ``in + out`` addition) so
every downstream result stays bitwise unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..tasks.task import TaskCost
    from .energy import EnergyBreakdown
    from .platform import Platform

__all__ = [
    "PENALTY_MESSAGE_BYTES",
    "busy_time",
    "transfer_time",
    "transfer_energy",
    "TaskDeviceCost",
    "PenaltyCost",
    "task_device_cost",
    "penalty_cost",
    "join_penalty_cost",
    "finalize_execution",
]

#: Size of the scalar penalty message exchanged between consecutive tasks.
PENALTY_MESSAGE_BYTES = 8.0


# ----------------------------------------------------------------------------
# Formula tier: broadcasting device / link models
# ----------------------------------------------------------------------------

def busy_time(
    flops,
    kernel_calls,
    working_set_bytes,
    peak_gflops,
    half_saturation_flops,
    memory_bandwidth_gbs,
    kernel_launch_overhead_s,
):
    """Busy (compute) time of a task on a device, excluding transfers.

    The roofline-with-saturation model of ``DeviceSpec``::

        kernel_flops = flops / kernel_calls
        compute      = kernel_calls * (kernel_flops + half_saturation) / (peak * 1e9)
        memory       = kernel_calls * working_set / (bandwidth * 1e9)
        busy         = max(compute, memory) + kernel_calls * launch_overhead

    All parameters broadcast: scalar task costs against per-(scenario, device)
    parameter arrays evaluate the whole grid in one expression, elementwise
    bitwise identical to the scalar path.
    """
    kernel_flops = flops / kernel_calls
    per_kernel_compute = (kernel_flops + half_saturation_flops) / (peak_gflops * 1e9)
    compute = kernel_calls * per_kernel_compute
    memory = kernel_calls * working_set_bytes / (memory_bandwidth_gbs * 1e9)
    return np.maximum(compute, memory) + kernel_calls * kernel_launch_overhead_s


def transfer_time(n_bytes, bandwidth_gbs, latency_s):
    """Seconds to move ``n_bytes`` across a link (one message; 0 bytes is free).

    Scalars in, float out (the historical ``LinkSpec.transfer_time``
    behaviour, including the ``n_bytes == 0`` short-circuit and the rejection
    of negative byte counts); any array argument broadcasts to an array with
    the same elementwise semantics.
    """
    if np.ndim(n_bytes) == 0 and np.ndim(bandwidth_gbs) == 0 and np.ndim(latency_s) == 0:
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_bytes == 0:
            return 0.0
        return latency_s + n_bytes / (bandwidth_gbs * 1e9)
    counts = np.asarray(n_bytes, dtype=float)
    if np.any(counts < 0):
        raise ValueError("n_bytes must be non-negative")
    return np.where(counts == 0, 0.0, latency_s + counts / (np.asarray(bandwidth_gbs) * 1e9))


def transfer_energy(n_bytes, energy_per_byte_j):
    """Energy (J) consumed by moving ``n_bytes`` across a link (broadcasts)."""
    if np.ndim(n_bytes) == 0 and np.ndim(energy_per_byte_j) == 0:
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        return energy_per_byte_j * n_bytes
    counts = np.asarray(n_bytes, dtype=float)
    if np.any(counts < 0):
        raise ValueError("n_bytes must be non-negative")
    return np.asarray(energy_per_byte_j) * counts


# ----------------------------------------------------------------------------
# Per-task tier: the aggregation shared by executor and cost tables
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class TaskDeviceCost:
    """Cost of running one task on one device, before the penalty hop.

    ``busy_s`` includes the task-startup overhead for non-host devices;
    the host I/O fields are zero when the task runs on the host (inputs are
    already there).  ``energy_in_j`` / ``energy_out_j`` stay separate because
    the executor folds them with two additions, and collapsing them into one
    would move the result by an ulp.
    """

    busy_s: float
    hostio_time_s: float
    hostio_bytes: float
    energy_in_j: float
    energy_out_j: float


@dataclass(frozen=True)
class PenaltyCost:
    """Cost of the scalar-penalty message crossing one device hop."""

    time_s: float
    energy_j: float
    n_bytes: float


_NO_HOP = PenaltyCost(time_s=0.0, energy_j=0.0, n_bytes=0.0)


def task_device_cost(
    platform: "Platform",
    cost: "TaskCost",
    alias: str,
    on_missing_link: str = "raise",
) -> TaskDeviceCost:
    """Busy time and host I/O cost of one task on one device of a platform.

    ``on_missing_link="raise"`` propagates the platform's ``KeyError`` when the
    host<->device link does not exist (the sequential executor's behaviour);
    ``"nan"`` fills the link-dependent time/energy fields with NaN instead,
    which is how the cost tables tolerate partially linked platforms.
    """
    device = platform.device(alias)
    busy = device.compute_time(cost)
    host = platform.host
    if alias == host:
        return TaskDeviceCost(
            busy_s=busy, hostio_time_s=0.0, hostio_bytes=0.0, energy_in_j=0.0, energy_out_j=0.0
        )
    try:
        # One addition for the in+out time, exactly like the historical
        # inline expressions, so the value is bitwise stable.
        hostio_time = platform.transfer_time(host, alias, cost.input_bytes) + platform.transfer_time(
            alias, host, cost.output_bytes
        )
        energy_in = platform.transfer_energy(host, alias, cost.input_bytes)
        energy_out = platform.transfer_energy(alias, host, cost.output_bytes)
    except KeyError:
        if on_missing_link != "nan":
            raise
        hostio_time = energy_in = energy_out = float("nan")
    return TaskDeviceCost(
        busy_s=busy + device.task_startup_overhead_s,
        hostio_time_s=hostio_time,
        hostio_bytes=cost.transferred_bytes,
        energy_in_j=energy_in,
        energy_out_j=energy_out,
    )


def penalty_cost(
    platform: "Platform",
    src: str,
    dst: str,
    on_missing_link: str = "raise",
) -> PenaltyCost:
    """Cost of the scalar penalty travelling the direct ``src -> dst`` link.

    Zero when both tasks run on the same device.  Missing links raise (or
    yield NaN times/energies under ``on_missing_link="nan"``) exactly like
    :func:`task_device_cost`.
    """
    if src == dst:
        return _NO_HOP
    try:
        time_s = platform.transfer_time(src, dst, PENALTY_MESSAGE_BYTES)
        energy_j = platform.transfer_energy(src, dst, PENALTY_MESSAGE_BYTES)
    except KeyError:
        if on_missing_link != "nan":
            raise
        time_s = energy_j = float("nan")
    return PenaltyCost(time_s=time_s, energy_j=energy_j, n_bytes=PENALTY_MESSAGE_BYTES)


def join_penalty_cost(
    platform: "Platform",
    srcs: "Sequence[str]",
    dst: str,
    on_missing_link: str = "raise",
) -> PenaltyCost:
    """Summed cost of a fan-in join: one penalty hop per incoming edge.

    Every predecessor's scalar crosses its own direct ``src -> dst`` link;
    the per-edge costs fold left in the given (canonical edge) order, which is
    the accumulation the vectorized graph engine reproduces bitwise.  An empty
    ``srcs`` (a source task) costs nothing -- the host feed is accounted
    separately, exactly like a chain's first task.
    """
    time_s = 0.0
    energy_j = 0.0
    n_bytes = 0.0
    for src in srcs:
        hop = penalty_cost(platform, src, dst, on_missing_link=on_missing_link)
        time_s += hop.time_s
        energy_j += hop.energy_j
        n_bytes += hop.n_bytes
    return PenaltyCost(time_s=time_s, energy_j=energy_j, n_bytes=n_bytes)


# ----------------------------------------------------------------------------
# Finalization tier: per-device energy and operating cost of one execution
# ----------------------------------------------------------------------------

def finalize_execution(
    platform: "Platform",
    busy_by_device: Mapping[str, float],
    total_time_s: float,
    transfer_energy_j: float,
) -> "tuple[EnergyBreakdown, float]":
    """Energy breakdown and operating cost of one finished execution.

    ``busy_by_device`` must cover every device of the platform (devices that
    ran nothing idle for the whole execution).  Folds the per-device terms in
    platform order, exactly like the historical inline accounting.
    """
    from .energy import EnergyBreakdown

    active = {
        alias: platform.device(alias).active_energy(busy_by_device[alias])
        for alias in busy_by_device
    }
    idle = {
        alias: platform.device(alias).idle_energy(max(total_time_s - busy_by_device[alias], 0.0))
        for alias in busy_by_device
    }
    energy = EnergyBreakdown(active_j=active, idle_j=idle, transfer_j=transfer_energy_j)
    operating_cost = sum(
        platform.device(alias).operating_cost(busy_by_device[alias]) for alias in busy_by_device
    )
    return energy, operating_cost
