"""Condition-stacked batch execution: all (scenario, placement) pairs at once.

The robustness workload evaluates one placement space under *many* platform
conditions (a scenario grid).  Looping :func:`~repro.devices.batch.execute_placements`
over per-scenario platforms re-enters Python once per scenario -- table build,
gathers and folds each time.  This module stacks the cost tables of every
scenario platform along a leading condition axis:

* :class:`GridCostTables` (built by :meth:`ChainCostTables.build_grid`) holds
  the per-(task, device) and per-(device, device) tables with shape
  ``(n_conditions, ...)``, built **vectorized across scenarios** straight from
  the :mod:`~repro.devices.costmodel` formula functions -- each scenario's
  slice is bitwise identical to ``ChainCostTables.build`` on that platform;
* :func:`execute_placements_grid` evaluates an ``(n_placements, n_tasks)``
  placement matrix against every condition in one NumPy pass, returning
  metrics shaped ``(n_conditions, n_placements)`` that are bitwise identical
  to looping ``execute_placements`` per derived platform.

Scenario-independent quantities (byte counts, FLOPs) are stored once without
the condition axis -- conditions change speeds, powers and prices, never how
many bytes a placement moves.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Sequence

import numpy as np

from ..tasks.chain import TaskChain
from ..tasks.graph import TaskGraph
from . import costmodel
from .batch import (
    BatchExecutionResult,
    ChainCostTables,
    _raise_graph_missing_link,
    as_graph_tables,
    as_placement_matrix,
    placement_labels,
)
from .costmodel import PENALTY_MESSAGE_BYTES
from .platform import Platform
from .tables import build_tables, resolve_aliases

__all__ = [
    "GridCostTables",
    "GraphGridCostTables",
    "GridExecutionResult",
    "build_grid_tables",
    "execute_placements_grid",
]


def _device_param(platforms: Sequence[Platform], aliases: Sequence[str], field: str) -> np.ndarray:
    """Per-(scenario, device) array of one DeviceSpec parameter."""
    return np.array(
        [[getattr(platform.device(alias), field) for alias in aliases] for platform in platforms]
    )


@dataclass(frozen=True)
class GridCostTables:
    """Cost tables of one chain under every platform of a scenario grid.

    Same layout as :class:`~repro.devices.batch.ChainCostTables` with a
    leading condition axis on every scenario-dependent array; scenario-
    independent arrays (``hostio_bytes``, ``task_flops``, penalty byte
    counts) carry no condition axis.  ``table(i)`` slices out one scenario's
    :class:`ChainCostTables`, bitwise identical to building it directly.
    """

    task_names: tuple[str, ...]
    platforms: tuple[Platform, ...]
    aliases: tuple[str, ...]
    #: Device-iteration order shared by every platform (the energy/cost fold
    #: walks it exactly like the per-platform executor does).
    device_order: tuple[str, ...]
    busy: np.ndarray  # (s, k, m)
    hostio_time: np.ndarray  # (s, k, m)
    hostio_bytes: np.ndarray  # (k, m)
    energy_in: np.ndarray  # (s, k, m)
    energy_out: np.ndarray  # (s, k, m)
    task_flops: np.ndarray  # (k,)
    penalty_time: np.ndarray  # (s, m, m)
    penalty_energy: np.ndarray  # (s, m, m)
    penalty_bytes: np.ndarray  # (m, m)
    first_penalty_time: np.ndarray  # (s, m)
    first_penalty_energy: np.ndarray  # (s, m)
    first_penalty_bytes: np.ndarray  # (m,)
    power_active: np.ndarray  # (s, m)
    power_idle: np.ndarray  # (s, m)
    cost_per_hour: np.ndarray  # (s, m)
    #: Idle power of platform devices outside the candidate aliases, keyed by
    #: position in ``device_order`` restricted to those devices: ``(s, n_extra)``.
    extra_idle_power: np.ndarray
    missing_links: frozenset = frozenset()
    #: Name of the workload the tables were built from (chain/graph name).
    workload: str = ""
    #: Content fingerprint of the build configuration (see
    #: :func:`repro.devices.tables.build_tables`); empty for hand-built tables.
    fingerprint: str = ""

    @property
    def n_scenarios(self) -> int:
        return len(self.platforms)

    @property
    def n_tasks(self) -> int:
        return len(self.task_names)

    @property
    def n_devices(self) -> int:
        return len(self.aliases)

    @property
    def host(self) -> str:
        return self.platforms[0].host

    def table(self, index: int) -> ChainCostTables:
        """The :class:`ChainCostTables` of one scenario (bitwise identical to
        ``ChainCostTables.build(chain, platforms[index], aliases)``)."""
        return ChainCostTables(
            task_names=self.task_names,
            platform=self.platforms[index],
            aliases=self.aliases,
            busy=self.busy[index],
            hostio_time=self.hostio_time[index],
            hostio_bytes=self.hostio_bytes,
            energy_in=self.energy_in[index],
            energy_out=self.energy_out[index],
            task_flops=self.task_flops,
            penalty_time=self.penalty_time[index],
            penalty_energy=self.penalty_energy[index],
            penalty_bytes=self.penalty_bytes,
            first_penalty_time=self.first_penalty_time[index],
            first_penalty_energy=self.first_penalty_energy[index],
            first_penalty_bytes=self.first_penalty_bytes,
            missing_links=self.missing_links,
            workload=self.workload,
            fingerprint=f"{self.fingerprint}#scenario{index}" if self.fingerprint else "",
        )

    def execute(self, placements: np.ndarray) -> "GridExecutionResult":
        """Evaluate a placement batch under every condition (protocol entry)."""
        return execute_placements_grid(self, placements)


@dataclass(frozen=True)
class GraphGridCostTables(GridCostTables):
    """Condition-stacked cost tables of a :class:`~repro.tasks.graph.TaskGraph`.

    Same value arrays as :class:`GridCostTables` (built over the graph's
    topologically ordered tasks), plus the dependency structure.  Per-scenario
    slices are :class:`~repro.devices.batch.GraphCostTables`, so
    :meth:`GridExecutionResult.batch` views replay graph semantics.
    """

    #: Per topological position, the predecessors' topological positions.
    pred_positions: tuple[tuple[int, ...], ...] = ()

    def table(self, index: int) -> ChainCostTables:
        """The :class:`~repro.devices.batch.GraphCostTables` of one scenario."""
        return as_graph_tables(super().table(index), self.pred_positions)


def build_grid_tables(
    chain: TaskChain | TaskGraph,
    platforms: Sequence[Platform],
    devices: Sequence[str] | None = None,
) -> GridCostTables:
    """Build the condition-stacked cost tables of a workload over scenario platforms.

    Thin shim over :func:`repro.devices.tables.build_tables`, the single
    construction path for every table family; see :func:`_build_grid_tables`
    for the vectorized builder it dispatches to.
    """
    return build_tables(chain, platforms, devices=devices)


def _build_grid_tables(
    chain: TaskChain | TaskGraph,
    platforms: Sequence[Platform],
    devices: Sequence[str] | None = None,
) -> GridCostTables:
    """The condition-stacked table builder behind :func:`build_grid_tables`.

    Every platform must share the base platform's *shape*: the same device
    aliases (in the same order), the same host and the same link topology --
    conditions re-parameterize a platform, they do not rewire it.  The tables
    are computed vectorized across the scenario axis through the
    :mod:`~repro.devices.costmodel` formulas, so each scenario's slice is
    bitwise identical to the scalar per-platform build.  A
    :class:`~repro.tasks.graph.TaskGraph` workload yields
    :class:`GraphGridCostTables` (same values over the topologically ordered
    tasks, plus the dependency structure).
    """
    if isinstance(chain, TaskGraph):
        base = _build_grid_tables(
            TaskChain(chain.tasks, name=chain.name), platforms, devices
        )
        values = {f.name: getattr(base, f.name) for f in fields(GridCostTables)}
        return GraphGridCostTables(**values, pred_positions=chain.predecessor_positions)
    platforms = tuple(platforms)
    if not platforms:
        raise ValueError("at least one platform is required")
    base = platforms[0]
    device_order = tuple(base.devices)
    link_keys = set(base.links)
    for platform in platforms[1:]:
        if tuple(platform.devices) != device_order:
            raise ValueError(
                f"platform {platform.name!r} has devices {list(platform.devices)}, "
                f"expected {list(device_order)} -- scenario platforms must share "
                f"the base platform's device set"
            )
        if platform.host != base.host:
            raise ValueError(
                f"platform {platform.name!r} has host {platform.host!r}, expected {base.host!r}"
            )
        if set(platform.links) != link_keys:
            raise ValueError(
                f"platform {platform.name!r} has links {sorted(platform.links)}, "
                f"expected {sorted(link_keys)} -- conditions must not rewire the topology"
            )

    aliases = resolve_aliases(base, devices)
    host = base.host
    costs = chain.costs()
    s, k, m = len(platforms), len(chain), len(aliases)
    missing: set[tuple[str, str]] = set()

    # -- per-(scenario, device) parameter gathers ---------------------------
    peak = _device_param(platforms, aliases, "peak_gflops")
    half_saturation = _device_param(platforms, aliases, "half_saturation_flops")
    mem_bw = _device_param(platforms, aliases, "memory_bandwidth_gbs")
    launch = _device_param(platforms, aliases, "kernel_launch_overhead_s")
    startup = _device_param(platforms, aliases, "task_startup_overhead_s")

    # -- host<->device and device<->device link parameters (NaN if absent) --
    def link_params(a: str, b: str) -> list[tuple[float, float, float]]:
        out = []
        for platform in platforms:
            try:
                link = platform.link(a, b)
            except KeyError:
                out.append((np.nan, np.nan, np.nan))
            else:
                out.append((link.bandwidth_gbs, link.latency_s, link.energy_per_byte_j))
        return out

    host_bw = np.full((s, m), np.nan)
    host_lat = np.full((s, m), np.nan)
    host_epb = np.full((s, m), np.nan)
    host_missing = np.zeros(m, dtype=bool)
    for d, alias in enumerate(aliases):
        if alias == host:
            continue
        params = link_params(host, alias)
        if np.isnan(params[0][0]):
            missing.add((host, alias))
            host_missing[d] = True
        host_bw[:, d] = [p[0] for p in params]
        host_lat[:, d] = [p[1] for p in params]
        host_epb[:, d] = [p[2] for p in params]

    pair_bw = np.full((s, m, m), np.nan)
    pair_lat = np.full((s, m, m), np.nan)
    pair_epb = np.full((s, m, m), np.nan)
    for i, a in enumerate(aliases):
        for j, b in enumerate(aliases):
            if a == b:
                continue
            params = link_params(a, b)
            if np.isnan(params[0][0]):
                missing.add((a, b))
                continue
            pair_bw[:, i, j] = [p[0] for p in params]
            pair_lat[:, i, j] = [p[1] for p in params]
            pair_epb[:, i, j] = [p[2] for p in params]

    nonhost = np.array([alias != host for alias in aliases])

    # -- per-(task, device) tables, vectorized over the scenario axis -------
    busy = np.empty((s, k, m))
    hostio_time = np.zeros((s, k, m))
    hostio_bytes = np.zeros((k, m))
    energy_in = np.zeros((s, k, m))
    energy_out = np.zeros((s, k, m))
    task_flops = np.array([cost.flops for cost in costs], dtype=float)
    for t, cost in enumerate(costs):
        busy[:, t, :] = costmodel.busy_time(
            cost.flops, cost.kernel_calls, cost.working_set_bytes, peak, half_saturation, mem_bw, launch
        )
        if nonhost.any():
            # Host I/O and startup only exist for offloaded tasks; the same
            # single addition per value as the scalar build.
            hostio_time[:, t, nonhost] = (
                costmodel.transfer_time(cost.input_bytes, host_bw, host_lat)
                + costmodel.transfer_time(cost.output_bytes, host_bw, host_lat)
            )[:, nonhost]
            energy_in[:, t, nonhost] = costmodel.transfer_energy(cost.input_bytes, host_epb)[:, nonhost]
            energy_out[:, t, nonhost] = costmodel.transfer_energy(cost.output_bytes, host_epb)[:, nonhost]
            hostio_bytes[t, nonhost] = cost.transferred_bytes
            busy[:, t, nonhost] += startup[:, nonhost]
    # Missing host links poison every link-dependent field, even for zero-byte
    # transfers (the scalar build NaNs the whole entry via the KeyError path).
    if host_missing.any():
        hostio_time[:, :, host_missing] = np.nan
        energy_in[:, :, host_missing] = np.nan
        energy_out[:, :, host_missing] = np.nan

    # -- penalty tables -----------------------------------------------------
    offdiag = ~np.eye(m, dtype=bool)
    penalty_time = np.zeros((s, m, m))
    penalty_energy = np.zeros((s, m, m))
    penalty_time[:, offdiag] = costmodel.transfer_time(PENALTY_MESSAGE_BYTES, pair_bw, pair_lat)[
        :, offdiag
    ]
    penalty_energy[:, offdiag] = costmodel.transfer_energy(PENALTY_MESSAGE_BYTES, pair_epb)[:, offdiag]
    penalty_bytes = np.where(offdiag, PENALTY_MESSAGE_BYTES, 0.0)

    first_penalty_time = np.zeros((s, m))
    first_penalty_energy = np.zeros((s, m))
    first_penalty_time[:, nonhost] = costmodel.transfer_time(
        PENALTY_MESSAGE_BYTES, host_bw, host_lat
    )[:, nonhost]
    first_penalty_energy[:, nonhost] = costmodel.transfer_energy(PENALTY_MESSAGE_BYTES, host_epb)[
        :, nonhost
    ]
    if host_missing.any():
        first_penalty_time[:, host_missing] = np.nan
        first_penalty_energy[:, host_missing] = np.nan
    first_penalty_bytes = np.where(nonhost, PENALTY_MESSAGE_BYTES, 0.0)

    extra = [alias for alias in device_order if alias not in aliases]
    extra_idle_power = np.array(
        [[platform.device(alias).power_idle_w for alias in extra] for platform in platforms]
    ).reshape(s, len(extra))

    return GridCostTables(
        task_names=tuple(chain.task_names),
        platforms=platforms,
        aliases=aliases,
        device_order=device_order,
        busy=busy,
        hostio_time=hostio_time,
        hostio_bytes=hostio_bytes,
        energy_in=energy_in,
        energy_out=energy_out,
        task_flops=task_flops,
        penalty_time=penalty_time,
        penalty_energy=penalty_energy,
        penalty_bytes=penalty_bytes,
        first_penalty_time=first_penalty_time,
        first_penalty_energy=first_penalty_energy,
        first_penalty_bytes=first_penalty_bytes,
        power_active=_device_param(platforms, aliases, "power_active_w"),
        power_idle=_device_param(platforms, aliases, "power_idle_w"),
        cost_per_hour=_device_param(platforms, aliases, "cost_per_hour"),
        extra_idle_power=extra_idle_power,
        missing_links=frozenset(missing),
        workload=chain.name,
    )


@dataclass(frozen=True)
class GridExecutionResult:
    """Array-form execution records of one batch under every condition.

    Scenario-dependent metrics have shape ``(n_conditions, n_placements)``
    (per-device columns ``(n_conditions, n_placements, n_devices)``); byte
    counts and FLOPs, which conditions cannot change, are stored once.
    Every slice along the condition axis is bitwise identical to
    :func:`~repro.devices.batch.execute_placements` on the scenario's derived
    platform -- :meth:`batch` materialises that view on demand.
    """

    tables: GridCostTables
    placements: np.ndarray
    total_time_s: np.ndarray  # (s, n)
    busy_by_device: np.ndarray  # (s, n, m)
    flops_by_device: np.ndarray  # (n, m)
    transferred_bytes: np.ndarray  # (n,)
    transfer_energy_j: np.ndarray  # (s, n)
    active_j: np.ndarray  # (s, n, m)
    idle_j: np.ndarray  # (s, n, m)
    energy_total_j: np.ndarray  # (s, n)
    operating_cost: np.ndarray  # (s, n)

    def __len__(self) -> int:
        """Number of placements (matching :class:`BatchExecutionResult`)."""
        return self.placements.shape[0]

    @property
    def n_scenarios(self) -> int:
        return self.tables.n_scenarios

    @property
    def aliases(self) -> tuple[str, ...]:
        return self.tables.aliases

    def placement(self, index: int) -> tuple[str, ...]:
        return tuple(self.aliases[d] for d in self.placements[index])

    def label(self, index: int) -> str:
        return "".join(self.placement(index))

    def labels(self) -> list[str]:
        return placement_labels(self.placements, self.aliases)

    def metric_values(self, metric: str = "time") -> np.ndarray:
        """``(n_conditions, n_placements)`` values of one scalar metric."""
        if metric == "time":
            return self.total_time_s
        if metric == "energy":
            return self.energy_total_j
        if metric == "cost":
            return self.operating_cost
        raise ValueError(f"unknown metric {metric!r}; choose 'time', 'energy' or 'cost'")

    def batch(self, index: int) -> BatchExecutionResult:
        """One scenario's :class:`BatchExecutionResult` (views, no copies)."""
        return BatchExecutionResult(
            tables=self.tables.table(index),
            placements=self.placements,
            total_time_s=self.total_time_s[index],
            busy_by_device=self.busy_by_device[index],
            flops_by_device=self.flops_by_device,
            transferred_bytes=self.transferred_bytes,
            transfer_energy_j=self.transfer_energy_j[index],
            active_j=self.active_j[index],
            idle_j=self.idle_j[index],
            energy_total_j=self.energy_total_j[index],
            operating_cost=self.operating_cost[index],
        )

    def batches(self):
        """Iterate the per-scenario batch views, in grid order."""
        for index in range(self.n_scenarios):
            yield self.batch(index)


def execute_placements_grid(tables: GridCostTables, placements: np.ndarray) -> GridExecutionResult:
    """Evaluate every placement under every condition in one vectorized pass.

    The grid analogue of :func:`~repro.devices.batch.execute_placements`: the
    same gathers and left folds with a leading condition axis, so every
    ``(scenario, placement)`` element undergoes the identical sequence of
    IEEE-754 operations as the per-scenario loop -- bitwise equal results.
    :class:`GraphGridCostTables` route through the DAG traversal (critical
    path, per-edge joins) with the condition axis vectorized alongside.
    """
    P = as_placement_matrix(placements, tables.aliases, tables.n_tasks, workload=tables.workload)
    P = P.astype(np.intp, copy=False)
    if isinstance(tables, GraphGridCostTables):
        return _execute_graph_placements_grid(tables, P)
    n, k = P.shape
    s, m = tables.n_scenarios, tables.n_devices
    task_idx = np.arange(k)

    busy_pt = tables.busy[:, task_idx, P]  # (s, n, k)
    hostio_time_pt = tables.hostio_time[:, task_idx, P]
    hostio_bytes_pt = tables.hostio_bytes[task_idx, P]  # (n, k)
    energy_in_pt = tables.energy_in[:, task_idx, P]
    energy_out_pt = tables.energy_out[:, task_idx, P]
    pen_time_pt = np.empty((s, n, k))
    pen_energy_pt = np.empty((s, n, k))
    pen_bytes_pt = np.empty((n, k))
    pen_time_pt[:, :, 0] = tables.first_penalty_time[:, P[:, 0]]
    pen_energy_pt[:, :, 0] = tables.first_penalty_energy[:, P[:, 0]]
    pen_bytes_pt[:, 0] = tables.first_penalty_bytes[P[:, 0]]
    if k > 1:
        src, dst = P[:, :-1], P[:, 1:]
        pen_time_pt[:, :, 1:] = tables.penalty_time[:, src, dst]
        pen_energy_pt[:, :, 1:] = tables.penalty_energy[:, src, dst]
        pen_bytes_pt[:, 1:] = tables.penalty_bytes[src, dst]
    transfer_pt = hostio_time_pt + pen_time_pt

    if tables.missing_links and np.isnan(transfer_pt).any():
        # Same rejection as execute_placements: only placements that actually
        # traverse a missing link fail, with the offending pair named.
        _, i, t = (int(v) for v in np.argwhere(np.isnan(transfer_pt))[0])
        current = tables.aliases[P[i, t]]
        if np.isnan(hostio_time_pt[:, i, t]).any():
            a, b = tables.host, current
        else:
            a = tables.host if t == 0 else tables.aliases[P[i, t - 1]]
            b = current
        raise KeyError(
            f"no link defined between {a!r} and {b!r} "
            f"(required by placement {placement_labels(P[i : i + 1], tables.aliases)[0]!r})"
        )

    # Left folds in task order: bitwise identical to the per-scenario loop.
    total_time = np.zeros((s, n))
    transferred = np.zeros(n)
    transfer_energy = np.zeros((s, n))
    busy_by_device = np.zeros((s, n, m))
    flops_by_device = np.zeros((n, m))
    for t in range(k):
        total_time += busy_pt[:, :, t] + transfer_pt[:, :, t]
        transferred += hostio_bytes_pt[:, t] + pen_bytes_pt[:, t]
        transfer_energy += energy_in_pt[:, :, t]
        transfer_energy += energy_out_pt[:, :, t]
        transfer_energy += pen_energy_pt[:, :, t]
        col = P[:, t]
        for d in range(m):
            mask = col == d
            busy_by_device[:, :, d] += busy_pt[:, :, t] * mask
            flops_by_device[:, d] += tables.task_flops[t] * mask

    return _finalize_grid(
        tables, P, total_time, transferred, transfer_energy, busy_by_device, flops_by_device
    )


def _finalize_grid(
    tables: GridCostTables,
    P: np.ndarray,
    total_time: np.ndarray,
    transferred: np.ndarray,
    transfer_energy: np.ndarray,
    busy_by_device: np.ndarray,
    flops_by_device: np.ndarray,
) -> GridExecutionResult:
    """Per-device energy/cost finalization shared by the chain and graph grid engines."""
    s, n = total_time.shape
    active = busy_by_device * tables.power_active[:, None, :]
    idle = np.maximum(total_time[:, :, None] - busy_by_device, 0.0) * tables.power_idle[:, None, :]

    # Fold the per-device energy/cost terms in the shared device order,
    # exactly like execute_placements walks platform.devices; candidate
    # devices contribute active/idle/cost columns, the rest idle throughout.
    column = {alias: j for j, alias in enumerate(tables.aliases)}
    operating_cost = np.zeros((s, n))
    active_sum = np.zeros((s, n))
    idle_sum = np.zeros((s, n))
    extra_position = 0
    for alias in tables.device_order:
        j = column.get(alias)
        if j is None:
            idle_w = tables.extra_idle_power[:, extra_position]
            extra_position += 1
            idle_sum += np.maximum(total_time - 0.0, 0.0) * idle_w[:, None]
            continue
        operating_cost += (tables.cost_per_hour[:, j, None] * busy_by_device[:, :, j]) / 3600.0
        active_sum += active[:, :, j]
        idle_sum += idle[:, :, j]
    energy_total = active_sum + idle_sum + transfer_energy

    return GridExecutionResult(
        tables=tables,
        placements=P,
        total_time_s=total_time,
        busy_by_device=busy_by_device,
        flops_by_device=flops_by_device,
        transferred_bytes=transferred,
        transfer_energy_j=transfer_energy,
        active_j=active,
        idle_j=idle,
        energy_total_j=energy_total,
        operating_cost=operating_cost,
    )


def _execute_graph_placements_grid(
    tables: GraphGridCostTables, P: np.ndarray
) -> GridExecutionResult:
    """Evaluate a DAG placement matrix under every condition in one pass.

    The grid analogue of the batch DAG engine: the same edge-ordered penalty
    folds, max-over-predecessors ready times and running-max critical path,
    with a leading condition axis -- every ``(scenario, placement)`` element
    is bitwise identical to ``execute_placements`` on the scenario's
    :class:`~repro.devices.batch.GraphCostTables`.
    """
    n, k = P.shape
    s, m = tables.n_scenarios, tables.n_devices
    task_idx = np.arange(k)
    preds = tables.pred_positions

    busy_pt = tables.busy[:, task_idx, P]  # (s, n, k)
    hostio_time_pt = tables.hostio_time[:, task_idx, P]
    hostio_bytes_pt = tables.hostio_bytes[task_idx, P]  # (n, k)
    energy_in_pt = tables.energy_in[:, task_idx, P]
    energy_out_pt = tables.energy_out[:, task_idx, P]
    pen_time_pt = np.zeros((s, n, k))
    pen_energy_pt = np.zeros((s, n, k))
    pen_bytes_pt = np.zeros((n, k))
    for t in range(k):
        dst = P[:, t]
        if preds[t]:
            for p in preds[t]:
                pen_time_pt[:, :, t] += tables.penalty_time[:, P[:, p], dst]
                pen_energy_pt[:, :, t] += tables.penalty_energy[:, P[:, p], dst]
                pen_bytes_pt[:, t] += tables.penalty_bytes[P[:, p], dst]
        else:
            pen_time_pt[:, :, t] = tables.first_penalty_time[:, dst]
            pen_energy_pt[:, :, t] = tables.first_penalty_energy[:, dst]
            pen_bytes_pt[:, t] = tables.first_penalty_bytes[dst]
    transfer_pt = hostio_time_pt + pen_time_pt

    if tables.missing_links and np.isnan(transfer_pt).any():
        # Same rejection (and attribution) as the batch DAG engine, detecting
        # NaNs across the scenario axis.
        _, i, t = (int(v) for v in np.argwhere(np.isnan(transfer_pt))[0])
        _raise_graph_missing_link(
            tables.aliases,
            tables.host,
            preds[t],
            P,
            i,
            t,
            bool(np.isnan(hostio_time_pt[:, i, t]).any()),
            lambda p: bool(np.isnan(tables.penalty_time[:, P[i, p], P[i, t]]).any()),
        )

    total_time = np.zeros((s, n))
    finish = np.zeros((s, n, k))
    available = np.zeros((s, n, m))
    rows = np.arange(n)
    transferred = np.zeros(n)
    transfer_energy = np.zeros((s, n))
    busy_by_device = np.zeros((s, n, m))
    flops_by_device = np.zeros((n, m))
    for t in range(k):
        ready = np.zeros((s, n))
        for p in preds[t]:
            ready = np.maximum(ready, finish[:, :, p])
        # Device serialization, vectorized across the condition axis.
        start = np.maximum(ready, available[:, rows, P[:, t]])
        finish[:, :, t] = start + (busy_pt[:, :, t] + transfer_pt[:, :, t])
        available[:, rows, P[:, t]] = finish[:, :, t]
        total_time = np.maximum(total_time, finish[:, :, t])
        transferred += hostio_bytes_pt[:, t] + pen_bytes_pt[:, t]
        transfer_energy += energy_in_pt[:, :, t]
        transfer_energy += energy_out_pt[:, :, t]
        transfer_energy += pen_energy_pt[:, :, t]
        col = P[:, t]
        for d in range(m):
            mask = col == d
            busy_by_device[:, :, d] += busy_pt[:, :, t] * mask
            flops_by_device[:, d] += tables.task_flops[t] * mask

    return _finalize_grid(
        tables, P, total_time, transferred, transfer_energy, busy_by_device, flops_by_device
    )
