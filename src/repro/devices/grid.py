"""Condition-stacked batch execution: all (scenario, placement) pairs at once.

The robustness workload evaluates one placement space under *many* platform
conditions (a scenario grid).  Looping :func:`~repro.devices.batch.execute_placements`
over per-scenario platforms re-enters Python once per scenario -- table build,
gathers and folds each time.  This module stacks the cost tables of every
scenario platform along a leading condition axis:

* :class:`GridCostTables` holds the per-(task, device) and per-(device,
  device) tables with shape ``(n_conditions, ...)``, built **vectorized
  across scenarios** straight from the :mod:`~repro.devices.costmodel`
  formula functions -- each scenario's slice is bitwise identical to
  ``ChainCostTables.build`` on that platform;
* :func:`execute_placements_grid` evaluates an ``(n_placements, n_tasks)``
  placement matrix against every condition in one NumPy pass, returning
  metrics shaped ``(n_conditions, n_placements)`` that are bitwise identical
  to looping ``execute_placements`` per derived platform.

Construction has two paths that agree bitwise.  The **fused** path (used by
:func:`repro.devices.tables.build_tables` when given a base platform plus a
:class:`~repro.scenarios.grid.ScenarioGrid` of vectorized axes) never derives
per-scenario ``Platform`` objects: it broadcasts the base platform's
parameters into :class:`~repro.devices.params.PlatformParams` arrays, applies
each condition axis' ``scale_arrays`` hook across all scenario rows at once,
and feeds the arrays to the same formula core.  The **materializing** path
(:func:`build_grid_tables` over pre-derived platforms) stays as the
differential reference and the fallback for custom axes without the hook.

Fused builds carry a :class:`GridBuildContext`, which enables **delta
rebuilds**: :meth:`GridCostTables.updated` / :meth:`~GridCostTables.updated_many`
recompute only the replaced scenarios' condition slices and reuse every other
row; with a :class:`~repro.cache.TableCache`, unchanged slices are
content-fingerprint hits (see :meth:`GridCostTables.cache_stats`).

Scenario-independent quantities (byte counts, FLOPs) are stored once without
the condition axis -- conditions change speeds, powers and prices, never how
many bytes a placement moves.
"""

from __future__ import annotations

import operator
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, fields, replace
from functools import cached_property, lru_cache
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from ..cache import (
    cached_fingerprint,
    canonical,
    seed_updated_grid_fingerprint,
    table_key_from_fingerprint,
)
from ..tasks.chain import TaskChain
from ..tasks.graph import TaskGraph
from . import costmodel
from .batch import (
    BatchExecutionResult,
    ChainCostTables,
    _raise_graph_missing_link,
    as_graph_tables,
    as_placement_matrix,
    placement_labels,
)
from .costmodel import PENALTY_MESSAGE_BYTES
from .params import PlatformParams
from .platform import Platform
from .tables import build_tables, resolve_aliases

if TYPE_CHECKING:
    from ..cache import TableCache
    from ..scenarios.conditions import Scenario
    from ..scenarios.grid import ScenarioGrid

__all__ = [
    "GridBuildContext",
    "GridCostTables",
    "GridSlice",
    "GridSliceStats",
    "GraphGridCostTables",
    "GridExecutionResult",
    "ScenarioPlatforms",
    "build_grid_tables",
    "execute_placements_grid",
]


def _device_param(platforms: Sequence[Platform], aliases: Sequence[str], field: str) -> np.ndarray:
    """Per-(scenario, device) array of one DeviceSpec parameter."""
    return np.array(
        [[getattr(platform.device(alias), field) for alias in aliases] for platform in platforms]
    )


class ScenarioPlatforms(SequenceABC):
    """Lazily derived per-scenario platforms of a fused grid build.

    A sequence facade: ``platforms[i]`` is
    ``apply_conditions(base, scenarios[i])``, derived on first access and
    memoized.  The fused builder never needs the platform objects, so this
    keeps ``tables.platforms`` API-compatible (fault profiles, per-scenario
    ``table()`` views) without paying one ``apply_conditions`` per scenario
    up front.
    """

    __slots__ = ("_base", "_scenarios", "_derived")

    def __init__(self, base: Platform, scenarios: "ScenarioGrid") -> None:
        self._base = base
        self._scenarios = scenarios
        self._derived: dict[int, Platform] = {}

    @property
    def base(self) -> Platform:
        return self._base

    @property
    def scenarios(self) -> "ScenarioGrid":
        return self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(self[i] for i in range(*index.indices(len(self))))
        i = operator.index(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"platform index {index} out of range for {len(self)} scenarios")
        derived = self._derived.get(i)
        if derived is None:
            from ..scenarios.conditions import apply_conditions

            derived = apply_conditions(self._base, self._scenarios[i])
            self._derived[i] = derived
        return derived

    def __reduce__(self):
        return (type(self), (self._base, self._scenarios))

    def __repr__(self) -> str:
        return f"ScenarioPlatforms(base={self._base.name!r}, n_scenarios={len(self)})"


@dataclass(frozen=True)
class GridSliceStats:
    """How one grid build (or delta rebuild) sourced its scenario slices."""

    #: Scenario slices served from the table cache by content fingerprint.
    served: int = 0
    #: Scenario slices computed fresh.
    built: int = 0

    @property
    def total(self) -> int:
        return self.served + self.built


#: The per-scenario arrays of GridCostTables, i.e. everything a condition can
#: move; scenario-independent arrays (byte counts, FLOPs) are excluded.
_SLICE_FIELDS = (
    "busy",
    "hostio_time",
    "energy_in",
    "energy_out",
    "penalty_time",
    "penalty_energy",
    "first_penalty_time",
    "first_penalty_energy",
    "power_active",
    "power_idle",
    "cost_per_hour",
    "extra_idle_power",
)


@dataclass(frozen=True)
class GridSlice:
    """One scenario's row of every per-scenario grid table (cache unit)."""

    busy: np.ndarray  # (k, m)
    hostio_time: np.ndarray  # (k, m)
    energy_in: np.ndarray  # (k, m)
    energy_out: np.ndarray  # (k, m)
    penalty_time: np.ndarray  # (m, m)
    penalty_energy: np.ndarray  # (m, m)
    first_penalty_time: np.ndarray  # (m,)
    first_penalty_energy: np.ndarray  # (m,)
    power_active: np.ndarray  # (m,)
    power_idle: np.ndarray  # (m,)
    cost_per_hour: np.ndarray  # (m,)
    extra_idle_power: np.ndarray  # (n_extra,)


@dataclass(frozen=True)
class GridBuildContext:
    """The configuration a fused grid build was derived from.

    Carried on :class:`GridCostTables` so delta rebuilds can recompute single
    condition slices (and re-key the result) without the original call site.
    """

    platform: Platform
    scenarios: "ScenarioGrid"
    devices: "tuple[str, ...] | None"
    #: Content fingerprint of the workload the tables were built from.
    workload_fingerprint: str
    #: The workload's per-task costs (scenario-independent).
    task_costs: tuple

    @cached_property
    def _slice_key_prefix(self) -> tuple:
        """The scenario-independent part of every slice cache key."""
        return (
            "grid-slice",
            self.workload_fingerprint,
            cached_fingerprint(self.platform),
            repr(canonical(self.devices)),
        )


@dataclass(frozen=True)
class GridCostTables:
    """Cost tables of one chain under every platform of a scenario grid.

    Same layout as :class:`~repro.devices.batch.ChainCostTables` with a
    leading condition axis on every scenario-dependent array; scenario-
    independent arrays (``hostio_bytes``, ``task_flops``, penalty byte
    counts) carry no condition axis.  ``table(i)`` slices out one scenario's
    :class:`ChainCostTables`, bitwise identical to building it directly.
    """

    task_names: tuple[str, ...]
    #: Per-scenario platforms: a tuple for materializing builds, a lazy
    #: :class:`ScenarioPlatforms` view for fused builds.
    platforms: Sequence[Platform]
    aliases: tuple[str, ...]
    #: Device-iteration order shared by every platform (the energy/cost fold
    #: walks it exactly like the per-platform executor does).
    device_order: tuple[str, ...]
    busy: np.ndarray  # (s, k, m)
    hostio_time: np.ndarray  # (s, k, m)
    hostio_bytes: np.ndarray  # (k, m)
    energy_in: np.ndarray  # (s, k, m)
    energy_out: np.ndarray  # (s, k, m)
    task_flops: np.ndarray  # (k,)
    penalty_time: np.ndarray  # (s, m, m)
    penalty_energy: np.ndarray  # (s, m, m)
    penalty_bytes: np.ndarray  # (m, m)
    first_penalty_time: np.ndarray  # (s, m)
    first_penalty_energy: np.ndarray  # (s, m)
    first_penalty_bytes: np.ndarray  # (m,)
    power_active: np.ndarray  # (s, m)
    power_idle: np.ndarray  # (s, m)
    cost_per_hour: np.ndarray  # (s, m)
    #: Idle power of platform devices outside the candidate aliases, keyed by
    #: position in ``device_order`` restricted to those devices: ``(s, n_extra)``.
    extra_idle_power: np.ndarray
    missing_links: frozenset = frozenset()
    #: Name of the workload the tables were built from (chain/graph name).
    workload: str = ""
    #: Content fingerprint of the build configuration (see
    #: :func:`repro.devices.tables.build_tables`); empty for hand-built tables.
    fingerprint: str = ""
    #: Build provenance enabling delta rebuilds; ``None`` for tables built
    #: from pre-derived platform sequences.
    build_context: "GridBuildContext | None" = None
    #: How this build sourced its scenario slices (cache-served vs computed);
    #: ``None`` for hand-built tables.
    slice_stats: "GridSliceStats | None" = None

    @property
    def n_scenarios(self) -> int:
        return len(self.platforms)

    @property
    def n_tasks(self) -> int:
        return len(self.task_names)

    @property
    def n_devices(self) -> int:
        return len(self.aliases)

    @property
    def host(self) -> str:
        return self.platforms[0].host

    def _scenario_index(self, index: int) -> int:
        """Normalize a scenario index (negative counts from the end)."""
        s = self.n_scenarios
        i = operator.index(index)
        j = i + s if i < 0 else i
        if not 0 <= j < s:
            raise IndexError(
                f"scenario index {i} out of range for {s} scenarios (valid: {-s}..{s - 1})"
            )
        return j

    def cache_stats(self) -> GridSliceStats:
        """Slice provenance of this build: how many of its scenario slices
        came out of the table cache vs were computed fresh."""
        if self.slice_stats is not None:
            return self.slice_stats
        return GridSliceStats(served=0, built=self.n_scenarios)

    def table(self, index: int) -> ChainCostTables:
        """The :class:`ChainCostTables` of one scenario (bitwise identical to
        ``ChainCostTables.build(chain, platforms[index], aliases)``); negative
        indices count from the end, like :meth:`GridExecutionResult.batch`."""
        index = self._scenario_index(index)
        return ChainCostTables(
            task_names=self.task_names,
            platform=self.platforms[index],
            aliases=self.aliases,
            busy=self.busy[index],
            hostio_time=self.hostio_time[index],
            hostio_bytes=self.hostio_bytes,
            energy_in=self.energy_in[index],
            energy_out=self.energy_out[index],
            task_flops=self.task_flops,
            penalty_time=self.penalty_time[index],
            penalty_energy=self.penalty_energy[index],
            penalty_bytes=self.penalty_bytes,
            first_penalty_time=self.first_penalty_time[index],
            first_penalty_energy=self.first_penalty_energy[index],
            first_penalty_bytes=self.first_penalty_bytes,
            missing_links=self.missing_links,
            workload=self.workload,
            fingerprint=f"{self.fingerprint}#scenario{index}" if self.fingerprint else "",
        )

    def updated(
        self, scenario_index: int, scenario: "Scenario", *, slice_cache: "TableCache | None" = None
    ) -> "GridCostTables":
        """Delta rebuild: these tables with one scenario replaced.

        Only the replaced scenario's condition slice is recomputed (or served
        from ``slice_cache`` by content fingerprint); every other row is
        reused as-is, which the differential tests pin bitwise against a full
        rebuild.  Negative indices count from the end.
        """
        return self.updated_many({scenario_index: scenario}, slice_cache=slice_cache)

    def updated_many(
        self,
        replacements: "Mapping[int, Scenario] | Sequence[tuple[int, Scenario]]",
        *,
        slice_cache: "TableCache | None" = None,
    ) -> "GridCostTables":
        """Batched :meth:`updated`: replace several scenarios in one pass."""
        context = self.build_context
        if context is None:
            raise ValueError(
                "these grid tables carry no build context for delta rebuilds; "
                "build them from a base platform plus scenarios "
                "(build_tables(..., scenarios=...) or executor.grid_cost_tables) "
                "rather than from pre-derived platforms"
            )
        replacements = dict(replacements)
        if not replacements:
            return self
        Scenario, ScenarioGrid = _scenario_classes()

        normalized: dict[int, "Scenario"] = {}
        for index, scenario in replacements.items():
            i = self._scenario_index(index)
            if i in normalized:
                raise ValueError(f"duplicate replacement for scenario index {i}")
            if not isinstance(scenario, Scenario):
                raise TypeError(f"expected a Scenario replacement, got {scenario!r}")
            normalized[i] = scenario
        entries = list(context.scenarios.scenarios)
        for i, scenario in normalized.items():
            entries[i] = scenario
        new_grid = ScenarioGrid(tuple(entries))  # re-validates name uniqueness

        order = sorted(normalized)
        slices: dict[int, GridSlice] = {}
        to_build: list[int] = []
        if slice_cache is not None:
            for i in order:
                hit = slice_cache.get(_slice_key(context, normalized[i]))
                if hit is not None:
                    slices[i] = hit
                else:
                    to_build.append(i)
        else:
            to_build = order
        if to_build:
            built = _scenario_slices(context, [normalized[i] for i in to_build])
            for i, piece in zip(to_build, built):
                slices[i] = piece
                if slice_cache is not None:
                    slice_cache.put(_slice_key(context, normalized[i]), piece)

        changes: dict[str, np.ndarray] = {}
        for name in _SLICE_FIELDS:
            arr = getattr(self, name).copy()
            for i in order:
                arr[i] = getattr(slices[i], name)
            changes[name] = arr
        new_context = replace(context, scenarios=new_grid)
        new_fingerprint = ""
        if self.fingerprint:
            # Invariant: equals build_tables' key for the updated config, so
            # executor-level caches recognise the rebuilt tables.  Seeding the
            # new grid's digest from the old one's memoized per-scenario parts
            # keeps the re-key O(replacements) instead of O(scenarios).
            seed_updated_grid_fingerprint(context.scenarios, new_grid, order)
            new_fingerprint = table_key_from_fingerprint(
                context.workload_fingerprint,
                context.platform,
                devices=context.devices,
                scenarios=new_grid,
            )
        return replace(
            self,
            platforms=ScenarioPlatforms(context.platform, new_grid),
            build_context=new_context,
            fingerprint=new_fingerprint,
            slice_stats=GridSliceStats(served=len(order) - len(to_build), built=len(to_build)),
            **changes,
        )

    def execute(self, placements: np.ndarray) -> "GridExecutionResult":
        """Evaluate a placement batch under every condition (protocol entry)."""
        return execute_placements_grid(self, placements)


@dataclass(frozen=True)
class GraphGridCostTables(GridCostTables):
    """Condition-stacked cost tables of a :class:`~repro.tasks.graph.TaskGraph`.

    Same value arrays as :class:`GridCostTables` (built over the graph's
    topologically ordered tasks), plus the dependency structure.  Per-scenario
    slices are :class:`~repro.devices.batch.GraphCostTables`, so
    :meth:`GridExecutionResult.batch` views replay graph semantics.
    """

    #: Per topological position, the predecessors' topological positions.
    pred_positions: tuple[tuple[int, ...], ...] = ()

    def table(self, index: int) -> ChainCostTables:
        """The :class:`~repro.devices.batch.GraphCostTables` of one scenario."""
        return as_graph_tables(super().table(index), self.pred_positions)


def build_grid_tables(
    chain: TaskChain | TaskGraph,
    platforms: Sequence[Platform],
    devices: Sequence[str] | None = None,
) -> GridCostTables:
    """Build the condition-stacked cost tables of a workload over scenario platforms.

    Thin shim over :func:`repro.devices.tables.build_tables`, the single
    construction path for every table family; see :func:`_build_grid_tables`
    for the vectorized builder it dispatches to.  Prefer passing
    ``build_tables(..., scenarios=grid)`` a base platform plus a
    :class:`~repro.scenarios.grid.ScenarioGrid`: that routes through the
    fused array-space builder and enables delta rebuilds.
    """
    return build_tables(chain, platforms, devices=devices)


# ---------------------------------------------------------------------------
# shared construction machinery
# ---------------------------------------------------------------------------


def _grid_build_context(
    workload: TaskChain | TaskGraph,
    platform: Platform,
    scenarios: "ScenarioGrid",
    devices: Sequence[str] | None,
) -> GridBuildContext:
    return GridBuildContext(
        platform=platform,
        scenarios=scenarios,
        devices=tuple(devices) if devices is not None else None,
        workload_fingerprint=cached_fingerprint(workload),
        task_costs=tuple(workload.costs()),
    )


def _attach_build_context(
    tables: GridCostTables,
    workload: TaskChain | TaskGraph,
    platform: Platform,
    scenarios: "ScenarioGrid",
    devices: Sequence[str] | None,
) -> GridCostTables:
    """Equip materializing-fallback tables with delta-rebuild provenance."""
    return replace(tables, build_context=_grid_build_context(workload, platform, scenarios, devices))


@lru_cache(maxsize=None)
def _scenario_classes() -> tuple:
    """``(Scenario, ScenarioGrid)``, imported once off the delta hot path."""
    from ..scenarios.conditions import Scenario
    from ..scenarios.grid import ScenarioGrid

    return Scenario, ScenarioGrid


def _slice_key(context: GridBuildContext, scenario: "Scenario") -> tuple:
    """Content-addressed cache key of one scenario's condition slice."""
    return context._slice_key_prefix + (cached_fingerprint(scenario),)


def _missing_link_topology(
    platform: Platform, aliases: Sequence[str], host: str
) -> tuple[frozenset, np.ndarray]:
    """Which candidate links are absent from the (shared) topology.

    Conditions never rewire a platform, so link presence is a property of the
    base platform alone; this is the single source of truth for both builders.
    """
    links = platform.links

    def has(a: str, b: str) -> bool:
        return ((a, b) if a <= b else (b, a)) in links

    missing: set[tuple[str, str]] = set()
    host_missing = np.zeros(len(aliases), dtype=bool)
    for d, alias in enumerate(aliases):
        if alias != host and not has(host, alias):
            missing.add((host, alias))
            host_missing[d] = True
    for a in aliases:
        for b in aliases:
            if a != b and not has(a, b):
                missing.add((a, b))
    return frozenset(missing), host_missing


@dataclass
class _GridParamArrays:
    """Gathered ``(scenario, ...)`` parameter arrays feeding the formula core."""

    peak: np.ndarray  # (s, m)
    half_saturation: np.ndarray  # (s, m)
    mem_bw: np.ndarray  # (s, m)
    launch: np.ndarray  # (s, m)
    startup: np.ndarray  # (s, m)
    power_active: np.ndarray  # (s, m)
    power_idle: np.ndarray  # (s, m)
    cost_per_hour: np.ndarray  # (s, m)
    host_bw: np.ndarray  # (s, m), NaN where absent
    host_lat: np.ndarray  # (s, m)
    host_epb: np.ndarray  # (s, m)
    host_missing: np.ndarray  # (m,) bool
    pair_bw: np.ndarray  # (s, m, m), NaN where absent
    pair_lat: np.ndarray  # (s, m, m)
    pair_epb: np.ndarray  # (s, m, m)
    extra_idle_power: np.ndarray  # (s, n_extra)
    missing: frozenset


def _materialized_params(
    platforms: Sequence[Platform],
    aliases: Sequence[str],
    host: str,
    device_order: Sequence[str],
) -> _GridParamArrays:
    """Parameter gather of the materializing path: per-platform getattr loops."""
    s, m = len(platforms), len(aliases)
    missing, host_missing = _missing_link_topology(platforms[0], aliases, host)

    def link_params(a: str, b: str) -> list[tuple[float, float, float]]:
        return [
            (link.bandwidth_gbs, link.latency_s, link.energy_per_byte_j)
            for platform in platforms
            for link in (platform.link(a, b),)
        ]

    host_bw = np.full((s, m), np.nan)
    host_lat = np.full((s, m), np.nan)
    host_epb = np.full((s, m), np.nan)
    for d, alias in enumerate(aliases):
        if alias == host or host_missing[d]:
            continue
        params = link_params(host, alias)
        host_bw[:, d] = [p[0] for p in params]
        host_lat[:, d] = [p[1] for p in params]
        host_epb[:, d] = [p[2] for p in params]

    pair_bw = np.full((s, m, m), np.nan)
    pair_lat = np.full((s, m, m), np.nan)
    pair_epb = np.full((s, m, m), np.nan)
    for i, a in enumerate(aliases):
        for j, b in enumerate(aliases):
            if a == b or (a, b) in missing:
                continue
            params = link_params(a, b)
            pair_bw[:, i, j] = [p[0] for p in params]
            pair_lat[:, i, j] = [p[1] for p in params]
            pair_epb[:, i, j] = [p[2] for p in params]

    extra = [alias for alias in device_order if alias not in aliases]
    extra_idle_power = np.array(
        [[platform.device(alias).power_idle_w for alias in extra] for platform in platforms]
    ).reshape(s, len(extra))

    return _GridParamArrays(
        peak=_device_param(platforms, aliases, "peak_gflops"),
        half_saturation=_device_param(platforms, aliases, "half_saturation_flops"),
        mem_bw=_device_param(platforms, aliases, "memory_bandwidth_gbs"),
        launch=_device_param(platforms, aliases, "kernel_launch_overhead_s"),
        startup=_device_param(platforms, aliases, "task_startup_overhead_s"),
        power_active=_device_param(platforms, aliases, "power_active_w"),
        power_idle=_device_param(platforms, aliases, "power_idle_w"),
        cost_per_hour=_device_param(platforms, aliases, "cost_per_hour"),
        host_bw=host_bw,
        host_lat=host_lat,
        host_epb=host_epb,
        host_missing=host_missing,
        pair_bw=pair_bw,
        pair_lat=pair_lat,
        pair_epb=pair_epb,
        extra_idle_power=extra_idle_power,
        missing=missing,
    )


def _fused_params(
    params: PlatformParams, aliases: Sequence[str], host: str
) -> _GridParamArrays:
    """Parameter gather of the fused path: column slices of the array bundle.

    The arrays hold exactly the floats the scalar axis math would have put on
    derived ``DeviceSpec``/``LinkSpec`` objects (elementwise float64 ops round
    identically), so the result is bitwise the materializing gather.
    """
    s, m = params.n_scenarios, len(aliases)
    missing, host_missing = _missing_link_topology(params.base, aliases, host)

    dev_index = {alias: i for i, alias in enumerate(params.device_order)}
    cand = np.array([dev_index[alias] for alias in aliases], dtype=np.intp)

    def dev(name: str) -> np.ndarray:
        return params.device[name][:, cand]

    pair_index = {pair: i for i, pair in enumerate(params.link_pairs)}

    def link_col(a: str, b: str) -> int:
        return pair_index[(a, b) if a <= b else (b, a)]

    host_bw = np.full((s, m), np.nan)
    host_lat = np.full((s, m), np.nan)
    host_epb = np.full((s, m), np.nan)
    for d, alias in enumerate(aliases):
        if alias == host or host_missing[d]:
            continue
        col = link_col(host, alias)
        host_bw[:, d] = params.link["bandwidth_gbs"][:, col]
        host_lat[:, d] = params.link["latency_s"][:, col]
        host_epb[:, d] = params.link["energy_per_byte_j"][:, col]

    pair_bw = np.full((s, m, m), np.nan)
    pair_lat = np.full((s, m, m), np.nan)
    pair_epb = np.full((s, m, m), np.nan)
    for i, a in enumerate(aliases):
        for j, b in enumerate(aliases):
            if a == b or (a, b) in missing:
                continue
            col = link_col(a, b)
            pair_bw[:, i, j] = params.link["bandwidth_gbs"][:, col]
            pair_lat[:, i, j] = params.link["latency_s"][:, col]
            pair_epb[:, i, j] = params.link["energy_per_byte_j"][:, col]

    extra = [alias for alias in params.device_order if alias not in aliases]
    extra_cols = np.array([dev_index[alias] for alias in extra], dtype=np.intp)
    extra_idle_power = params.device["power_idle_w"][:, extra_cols].reshape(s, len(extra))

    return _GridParamArrays(
        peak=dev("peak_gflops"),
        half_saturation=dev("half_saturation_flops"),
        mem_bw=dev("memory_bandwidth_gbs"),
        launch=dev("kernel_launch_overhead_s"),
        startup=dev("task_startup_overhead_s"),
        power_active=dev("power_active_w"),
        power_idle=dev("power_idle_w"),
        cost_per_hour=dev("cost_per_hour"),
        host_bw=host_bw,
        host_lat=host_lat,
        host_epb=host_epb,
        host_missing=host_missing,
        pair_bw=pair_bw,
        pair_lat=pair_lat,
        pair_epb=pair_epb,
        extra_idle_power=extra_idle_power,
        missing=missing,
    )


def _apply_grid_conditions(params: PlatformParams, entries: "Sequence[Scenario]") -> None:
    """Apply every scenario's condition axes to the parameter arrays in place.

    Walks the settings *positions* in order and groups the scenarios that pin
    the same axis at each position into one ``scale_arrays`` call (axes are
    hashable value types).  Each scenario's axes still apply in its own
    settings order, and the grouped rows are disjoint, so the arithmetic per
    row is exactly the scalar sequence of apply() calls.
    """
    max_steps = max((len(scenario.settings) for scenario in entries), default=0)
    for step in range(max_steps):
        groups: "dict[Any, tuple[list[int], list[float]]]" = {}
        for row, scenario in enumerate(entries):
            if step < len(scenario.settings):
                axis, value = scenario.settings[step]
                rows, values = groups.setdefault(axis, ([], []))
                rows.append(row)
                values.append(value)
        for axis, (rows, values) in groups.items():
            axis.scale_arrays(params, np.asarray(rows, dtype=np.intp), np.asarray(values, dtype=float))


def _grid_value_arrays(costs: Sequence, pa: _GridParamArrays, nonhost: np.ndarray) -> dict:
    """The scenario-dependent grid tables from gathered parameter arrays.

    Shared formula core of the materializing and fused builders *and* of delta
    rebuilds.  Every operation is elementwise along the scenario axis, so
    computing any scenario subset reproduces the full build's rows bitwise.
    """
    s, m = pa.peak.shape
    k = len(costs)

    busy = np.empty((s, k, m))
    hostio_time = np.zeros((s, k, m))
    energy_in = np.zeros((s, k, m))
    energy_out = np.zeros((s, k, m))
    any_nonhost = bool(nonhost.any())
    for t, cost in enumerate(costs):
        busy[:, t, :] = costmodel.busy_time(
            cost.flops, cost.kernel_calls, cost.working_set_bytes, pa.peak, pa.half_saturation, pa.mem_bw, pa.launch
        )
        if any_nonhost:
            # Host I/O and startup only exist for offloaded tasks; the same
            # single addition per value as the scalar build.
            hostio_time[:, t, nonhost] = (
                costmodel.transfer_time(cost.input_bytes, pa.host_bw, pa.host_lat)
                + costmodel.transfer_time(cost.output_bytes, pa.host_bw, pa.host_lat)
            )[:, nonhost]
            energy_in[:, t, nonhost] = costmodel.transfer_energy(cost.input_bytes, pa.host_epb)[:, nonhost]
            energy_out[:, t, nonhost] = costmodel.transfer_energy(cost.output_bytes, pa.host_epb)[:, nonhost]
            busy[:, t, nonhost] += pa.startup[:, nonhost]
    # Missing host links poison every link-dependent field, even for zero-byte
    # transfers (the scalar build NaNs the whole entry via the KeyError path).
    if pa.host_missing.any():
        hostio_time[:, :, pa.host_missing] = np.nan
        energy_in[:, :, pa.host_missing] = np.nan
        energy_out[:, :, pa.host_missing] = np.nan

    offdiag = ~np.eye(m, dtype=bool)
    penalty_time = np.zeros((s, m, m))
    penalty_energy = np.zeros((s, m, m))
    penalty_time[:, offdiag] = costmodel.transfer_time(PENALTY_MESSAGE_BYTES, pa.pair_bw, pa.pair_lat)[
        :, offdiag
    ]
    penalty_energy[:, offdiag] = costmodel.transfer_energy(PENALTY_MESSAGE_BYTES, pa.pair_epb)[:, offdiag]

    first_penalty_time = np.zeros((s, m))
    first_penalty_energy = np.zeros((s, m))
    first_penalty_time[:, nonhost] = costmodel.transfer_time(
        PENALTY_MESSAGE_BYTES, pa.host_bw, pa.host_lat
    )[:, nonhost]
    first_penalty_energy[:, nonhost] = costmodel.transfer_energy(PENALTY_MESSAGE_BYTES, pa.host_epb)[
        :, nonhost
    ]
    if pa.host_missing.any():
        first_penalty_time[:, pa.host_missing] = np.nan
        first_penalty_energy[:, pa.host_missing] = np.nan

    return {
        "busy": busy,
        "hostio_time": hostio_time,
        "energy_in": energy_in,
        "energy_out": energy_out,
        "penalty_time": penalty_time,
        "penalty_energy": penalty_energy,
        "first_penalty_time": first_penalty_time,
        "first_penalty_energy": first_penalty_energy,
        "power_active": pa.power_active,
        "power_idle": pa.power_idle,
        "cost_per_hour": pa.cost_per_hour,
        "extra_idle_power": pa.extra_idle_power,
    }


def _static_value_arrays(costs: Sequence, nonhost: np.ndarray, m: int) -> dict:
    """The scenario-independent grid tables (byte counts, FLOPs)."""
    k = len(costs)
    task_flops = np.array([cost.flops for cost in costs], dtype=float)
    hostio_bytes = np.zeros((k, m))
    if nonhost.any():
        for t, cost in enumerate(costs):
            hostio_bytes[t, nonhost] = cost.transferred_bytes
    offdiag = ~np.eye(m, dtype=bool)
    penalty_bytes = np.where(offdiag, PENALTY_MESSAGE_BYTES, 0.0)
    first_penalty_bytes = np.where(nonhost, PENALTY_MESSAGE_BYTES, 0.0)
    return {
        "hostio_bytes": hostio_bytes,
        "task_flops": task_flops,
        "penalty_bytes": penalty_bytes,
        "first_penalty_bytes": first_penalty_bytes,
    }


def _build_grid_tables(
    chain: TaskChain | TaskGraph,
    platforms: Sequence[Platform],
    devices: Sequence[str] | None = None,
) -> GridCostTables:
    """The materializing grid builder behind :func:`build_grid_tables`.

    Every platform must share the base platform's *shape*: the same device
    aliases (in the same order), the same host and the same link topology --
    conditions re-parameterize a platform, they do not rewire it.  The tables
    are computed vectorized across the scenario axis through the
    :mod:`~repro.devices.costmodel` formulas, so each scenario's slice is
    bitwise identical to the scalar per-platform build.  A
    :class:`~repro.tasks.graph.TaskGraph` workload yields
    :class:`GraphGridCostTables` (same values over the topologically ordered
    tasks, plus the dependency structure).

    This path gathers parameters from materialized ``Platform`` objects and
    serves as the differential reference (and custom-axis fallback) for the
    fused builder, which shares its formula core (:func:`_grid_value_arrays`).
    """
    if isinstance(chain, TaskGraph):
        base = _build_grid_tables(
            TaskChain(chain.tasks, name=chain.name), platforms, devices
        )
        values = {f.name: getattr(base, f.name) for f in fields(GridCostTables)}
        return GraphGridCostTables(**values, pred_positions=chain.predecessor_positions)
    platforms = tuple(platforms)
    if not platforms:
        raise ValueError("at least one platform is required")
    base = platforms[0]
    device_order = tuple(base.devices)
    link_keys = set(base.links)
    for platform in platforms[1:]:
        if tuple(platform.devices) != device_order:
            raise ValueError(
                f"platform {platform.name!r} has devices {list(platform.devices)}, "
                f"expected {list(device_order)} -- scenario platforms must share "
                f"the base platform's device set"
            )
        if platform.host != base.host:
            raise ValueError(
                f"platform {platform.name!r} has host {platform.host!r}, expected {base.host!r}"
            )
        if set(platform.links) != link_keys:
            raise ValueError(
                f"platform {platform.name!r} has links {sorted(platform.links)}, "
                f"expected {sorted(link_keys)} -- conditions must not rewire the topology"
            )

    aliases = resolve_aliases(base, devices)
    host = base.host
    costs = chain.costs()
    nonhost = np.array([alias != host for alias in aliases])

    pa = _materialized_params(platforms, aliases, host, device_order)
    values = _grid_value_arrays(costs, pa, nonhost)
    static = _static_value_arrays(costs, nonhost, len(aliases))

    return GridCostTables(
        task_names=tuple(chain.task_names),
        platforms=platforms,
        aliases=aliases,
        device_order=device_order,
        missing_links=pa.missing,
        workload=chain.name,
        slice_stats=GridSliceStats(served=0, built=len(platforms)),
        **values,
        **static,
    )


def _build_grid_tables_fused(
    workload: TaskChain | TaskGraph,
    platform: Platform,
    scenarios: "ScenarioGrid",
    devices: Sequence[str] | None = None,
    slice_cache: "TableCache | None" = None,
) -> "GridCostTables | None":
    """The fused array-space grid builder (base platform + scenario grid).

    Returns ``None`` when any scenario pins an axis without the vectorized
    ``scale_arrays`` hook -- the caller falls back to the materializing path.
    With a ``slice_cache``, previously built scenario slices are served by
    content fingerprint instead of recomputed (see
    :meth:`GridCostTables.cache_stats`).
    """
    from ..scenarios.conditions import vectorized_axis

    for scenario in scenarios.scenarios:
        for axis, _ in scenario.settings:
            if not vectorized_axis(axis):
                return None
    context = _grid_build_context(workload, platform, scenarios, devices)
    if isinstance(workload, TaskGraph):
        base = _fused_grid_tables(
            TaskChain(workload.tasks, name=workload.name), platform, scenarios, devices, slice_cache, context
        )
        values = {f.name: getattr(base, f.name) for f in fields(GridCostTables)}
        return GraphGridCostTables(**values, pred_positions=workload.predecessor_positions)
    return _fused_grid_tables(workload, platform, scenarios, devices, slice_cache, context)


def _fused_grid_tables(
    chain: TaskChain,
    platform: Platform,
    scenarios: "ScenarioGrid",
    devices: Sequence[str] | None,
    slice_cache: "TableCache | None",
    context: GridBuildContext,
) -> GridCostTables:
    aliases = resolve_aliases(platform, devices)
    host = platform.host
    costs = context.task_costs
    entries = scenarios.scenarios
    s, m = len(entries), len(aliases)
    nonhost = np.array([alias != host for alias in aliases])

    keys: "list[tuple] | None" = None
    served: dict[int, GridSlice] = {}
    if slice_cache is not None:
        keys = [_slice_key(context, scenario) for scenario in entries]
        for i, key in enumerate(keys):
            hit = slice_cache.get(key)
            if hit is not None:
                served[i] = hit
    need = [i for i in range(s) if i not in served]

    sub = None
    missing: "frozenset | None" = None
    if need:
        params = PlatformParams.gather(platform, len(need))
        _apply_grid_conditions(params, [entries[i] for i in need])
        pa = _fused_params(params, aliases, host)
        sub = _grid_value_arrays(costs, pa, nonhost)
        missing = pa.missing
    if missing is None:
        missing = _missing_link_topology(platform, aliases, host)[0]

    if not served:
        values = sub if sub is not None else {}
    else:
        any_slice = next(iter(served.values()))
        rows = np.asarray(need, dtype=np.intp)
        values = {}
        for name in _SLICE_FIELDS:
            tail = sub[name].shape[1:] if sub is not None else getattr(any_slice, name).shape
            arr = np.empty((s,) + tail)
            if need:
                arr[rows] = sub[name]
            for i, piece in served.items():
                arr[i] = getattr(piece, name)
            values[name] = arr
    if slice_cache is not None and need:
        for pos, i in enumerate(need):
            piece = GridSlice(**{name: sub[name][pos].copy() for name in _SLICE_FIELDS})
            slice_cache.put(keys[i], piece)

    static = _static_value_arrays(costs, nonhost, m)
    return GridCostTables(
        task_names=tuple(chain.task_names),
        platforms=ScenarioPlatforms(platform, scenarios),
        aliases=aliases,
        device_order=tuple(platform.devices),
        missing_links=missing,
        workload=chain.name,
        build_context=context,
        slice_stats=GridSliceStats(served=len(served), built=len(need)),
        **values,
        **static,
    )


def _scenario_slices(context: GridBuildContext, entries: "Sequence[Scenario]") -> list[GridSlice]:
    """Compute the condition slices of some scenarios of a build context.

    Uses the fused array path when every axis is vectorized, the materializing
    apply_conditions path otherwise; either way the formula core is elementwise
    per scenario row, so the slices match a full rebuild bitwise.
    """
    from ..scenarios.conditions import apply_conditions, vectorized_axis

    platform = context.platform
    aliases = resolve_aliases(platform, context.devices)
    host = platform.host
    nonhost = np.array([alias != host for alias in aliases])
    fused = all(
        vectorized_axis(axis) for scenario in entries for axis, _ in scenario.settings
    )
    if fused:
        params = PlatformParams.gather(platform, len(entries))
        _apply_grid_conditions(params, entries)
        pa = _fused_params(params, aliases, host)
    else:
        platforms = tuple(apply_conditions(platform, scenario) for scenario in entries)
        pa = _materialized_params(platforms, aliases, host, tuple(platform.devices))
    values = _grid_value_arrays(context.task_costs, pa, nonhost)
    return [
        GridSlice(**{name: values[name][i].copy() for name in _SLICE_FIELDS})
        for i in range(len(entries))
    ]


@dataclass(frozen=True)
class GridExecutionResult:
    """Array-form execution records of one batch under every condition.

    Scenario-dependent metrics have shape ``(n_conditions, n_placements)``
    (per-device columns ``(n_conditions, n_placements, n_devices)``); byte
    counts and FLOPs, which conditions cannot change, are stored once.
    Every slice along the condition axis is bitwise identical to
    :func:`~repro.devices.batch.execute_placements` on the scenario's derived
    platform -- :meth:`batch` materialises that view on demand.

    The per-device energy breakdowns :attr:`active_j` / :attr:`idle_j` are
    computed lazily on first access: the scalar totals already fold them in,
    so the full ``(s, n, m)`` breakdown cubes only cost memory traffic when a
    caller actually inspects them.
    """

    tables: GridCostTables
    placements: np.ndarray
    total_time_s: np.ndarray  # (s, n)
    busy_by_device: np.ndarray  # (s, n, m)
    flops_by_device: np.ndarray  # (n, m)
    transferred_bytes: np.ndarray  # (n,)
    transfer_energy_j: np.ndarray  # (s, n)
    energy_total_j: np.ndarray  # (s, n)
    operating_cost: np.ndarray  # (s, n)

    @cached_property
    def active_j(self) -> np.ndarray:
        """Per-device active energy ``(s, n, m)``, computed on first access."""
        return self.busy_by_device * self.tables.power_active[:, None, :]

    @cached_property
    def idle_j(self) -> np.ndarray:
        """Per-device idle energy ``(s, n, m)``, computed on first access."""
        return (
            np.maximum(self.total_time_s[:, :, None] - self.busy_by_device, 0.0)
            * self.tables.power_idle[:, None, :]
        )

    def __len__(self) -> int:
        """Number of placements (matching :class:`BatchExecutionResult`)."""
        return self.placements.shape[0]

    @property
    def n_scenarios(self) -> int:
        return self.tables.n_scenarios

    @property
    def aliases(self) -> tuple[str, ...]:
        return self.tables.aliases

    def placement(self, index: int) -> tuple[str, ...]:
        return tuple(self.aliases[d] for d in self.placements[index])

    def label(self, index: int) -> str:
        return "".join(self.placement(index))

    def labels(self) -> list[str]:
        return placement_labels(self.placements, self.aliases)

    def metric_values(self, metric: str = "time") -> np.ndarray:
        """``(n_conditions, n_placements)`` values of one scalar metric."""
        if metric == "time":
            return self.total_time_s
        if metric == "energy":
            return self.energy_total_j
        if metric == "cost":
            return self.operating_cost
        raise ValueError(f"unknown metric {metric!r}; choose 'time', 'energy' or 'cost'")

    def batch(self, index: int) -> BatchExecutionResult:
        """One scenario's :class:`BatchExecutionResult` (views, no copies);
        negative indices count from the end."""
        index = self.tables._scenario_index(index)
        return BatchExecutionResult(
            tables=self.tables.table(index),
            placements=self.placements,
            total_time_s=self.total_time_s[index],
            busy_by_device=self.busy_by_device[index],
            flops_by_device=self.flops_by_device,
            transferred_bytes=self.transferred_bytes,
            transfer_energy_j=self.transfer_energy_j[index],
            active_j=self.active_j[index],
            idle_j=self.idle_j[index],
            energy_total_j=self.energy_total_j[index],
            operating_cost=self.operating_cost[index],
        )

    def batches(self):
        """Iterate the per-scenario batch views, in grid order."""
        for index in range(self.n_scenarios):
            yield self.batch(index)


def execute_placements_grid(tables: GridCostTables, placements: np.ndarray) -> GridExecutionResult:
    """Evaluate every placement under every condition in one vectorized pass.

    The grid analogue of :func:`~repro.devices.batch.execute_placements`: the
    same gathers and left folds with a leading condition axis, so every
    ``(scenario, placement)`` element undergoes the identical sequence of
    IEEE-754 operations as the per-scenario loop -- bitwise equal results.
    :class:`GraphGridCostTables` route through the DAG traversal (critical
    path, per-edge joins) with the condition axis vectorized alongside.
    """
    P = as_placement_matrix(placements, tables.aliases, tables.n_tasks, workload=tables.workload)
    P = P.astype(np.intp, copy=False)
    if isinstance(tables, GraphGridCostTables):
        return _execute_graph_placements_grid(tables, P)
    if tables.missing_links:
        # Missing links mean gathered transfer times can be NaN; the checked
        # engine materializes the full (s, n, k) gathers so the first NaN can
        # be attributed to the exact (placement, task) that crosses the gap.
        return _execute_chain_grid_checked(tables, P)
    n, k = P.shape
    s, m = tables.n_scenarios, tables.n_devices

    # Condition math in compact space: a task's time contribution is
    # ``busy + (hostio + penalty)``, which takes at most m*m distinct values
    # per (scenario, task) -- one per (previous device, device) pair.  The
    # combine therefore runs on (s, m, m) tables and only the final gather and
    # accumulator add touch (s, n).  Per element this is the identical
    # sequence of IEEE-754 operations as the checked engine below (the gather
    # merely deduplicates them), so results stay bitwise equal.
    energy_in_flat = tables.energy_in.reshape(s, k * m)
    energy_out_flat = tables.energy_out.reshape(s, k * m)
    pen_energy_flat = tables.penalty_energy.reshape(s, m * m)
    hostio_bytes_flat = tables.hostio_bytes.ravel()
    pen_bytes_flat = tables.penalty_bytes.ravel()

    total_time: np.ndarray | None = None
    transfer_energy: np.ndarray | None = None
    transferred = np.zeros(n)
    flops_by_device = np.zeros((n, m))
    # Device-major busy planes: busy_block[d] is a contiguous (s, n) slab, so
    # both the accumulation and the per-device finalization sums run on
    # contiguous memory; the (s, n, m) result view is a free transpose.
    # A placement's busy time on device d is the task-order sum of the tasks
    # it maps to d (the sequential fold adds busy * False == 0.0 for the
    # rest, a bitwise no-op on these non-negative values), so when the 2**k
    # possible subset sums per (scenario, device) undercut the expanded
    # per-task gathers they are built once and gathered instead.
    subset_fold = (1 << k) <= m * n
    if subset_fold:
        busy_block = np.empty((m, s, n))
    else:
        busy_block = np.zeros((m, s, n))
        mask_scratch = np.empty((s, n))
        busy_flat = tables.busy.reshape(s, k * m)

    for t in range(k):
        col = P[:, t]
        cols_t = t * m + col
        if t == 0:
            combined = tables.hostio_time[:, 0, :] + tables.first_penalty_time  # (s, m)
            combined += tables.busy[:, 0, :]
            pen_bytes_t = tables.first_penalty_bytes.take(col)
            pen_energy_t = tables.first_penalty_energy[:, col]
            # The accumulators start at 0.0 and every contribution is
            # non-negative, so seeding them from the first task's (owned)
            # gathers equals the explicit zeros + add of the checked engine.
            total_time = combined[:, col]
            transfer_energy = energy_in_flat[:, cols_t]
        else:
            pair = P[:, t - 1] * m + col
            combined = tables.hostio_time[:, t, None, :] + tables.penalty_time  # (s, m, m)
            combined += tables.busy[:, t, None, :]
            pen_bytes_t = pen_bytes_flat.take(pair)
            pen_energy_t = pen_energy_flat[:, pair]
            np.add(total_time, combined.reshape(s, m * m)[:, pair], out=total_time)
            np.add(transfer_energy, energy_in_flat[:, cols_t], out=transfer_energy)
        transferred += hostio_bytes_flat.take(cols_t) + pen_bytes_t
        np.add(transfer_energy, energy_out_flat[:, cols_t], out=transfer_energy)
        np.add(transfer_energy, pen_energy_t, out=transfer_energy)
        busy_t = None if subset_fold else busy_flat[:, cols_t]
        for d in range(m):
            mask = col == d
            flops_by_device[:, d] += tables.task_flops[t] * mask
            if busy_t is not None:
                # Per-device accumulation via boolean masks, exactly the
                # sequential engine's fold (x * True == x, x * False == 0.0).
                np.multiply(busy_t, mask, out=mask_scratch)
                busy_block[d] += mask_scratch

    if total_time is None:  # zero-task workload: nothing to fold
        total_time = np.zeros((s, n))
        transfer_energy = np.zeros((s, n))
    if subset_fold:
        subset_weights = 1 << np.arange(k)
        for d in range(m):
            sums = np.zeros((s, 1))
            for t in range(k):
                sums = np.concatenate((sums, sums + tables.busy[:, t, d, None]), axis=1)
            subset = ((P == d) * subset_weights).sum(axis=1)
            np.take(sums, subset, axis=1, out=busy_block[d])

    return _finalize_grid(
        tables,
        P,
        total_time,
        transferred,
        transfer_energy,
        busy_block.transpose(1, 2, 0),
        flops_by_device,
        busy_cols=tuple(busy_block),
    )


def _execute_chain_grid_checked(tables: GridCostTables, P: np.ndarray) -> GridExecutionResult:
    """The materializing chain engine for platforms with missing links.

    Gathers the full ``(s, n, k)`` per-task cubes up front so a NaN transfer
    time (a placement crossing an undefined link) can be located and reported
    with the exact offending device pair.  Fold order matches the fast path,
    so results are bitwise identical when no placement is rejected.
    """
    n, k = P.shape
    s, m = tables.n_scenarios, tables.n_devices

    # Flat-index takes: one contiguous gather per table instead of broadcast
    # advanced indexing -- same elements, so bitwise identical, with far less
    # index arithmetic.
    flat_cols = ((np.arange(k) * m)[None, :] + P).ravel()

    def take_sk(table: np.ndarray) -> np.ndarray:
        return table.reshape(s, k * m).take(flat_cols, axis=1).reshape(s, n, k)

    busy_pt = take_sk(tables.busy)  # (s, n, k)
    hostio_time_pt = take_sk(tables.hostio_time)
    hostio_bytes_pt = tables.hostio_bytes.ravel().take(flat_cols).reshape(n, k)  # (n, k)
    energy_in_pt = take_sk(tables.energy_in)
    energy_out_pt = take_sk(tables.energy_out)
    pen_time_pt = np.empty((s, n, k))
    pen_energy_pt = np.empty((s, n, k))
    pen_bytes_pt = np.empty((n, k))
    first_col = P[:, 0]
    pen_time_pt[:, :, 0] = tables.first_penalty_time.take(first_col, axis=1)
    pen_energy_pt[:, :, 0] = tables.first_penalty_energy.take(first_col, axis=1)
    pen_bytes_pt[:, 0] = tables.first_penalty_bytes.take(first_col)
    if k > 1:
        pair_flat = (P[:, :-1] * m + P[:, 1:]).ravel()
        pen_time_pt[:, :, 1:] = (
            tables.penalty_time.reshape(s, m * m).take(pair_flat, axis=1).reshape(s, n, k - 1)
        )
        pen_energy_pt[:, :, 1:] = (
            tables.penalty_energy.reshape(s, m * m).take(pair_flat, axis=1).reshape(s, n, k - 1)
        )
        pen_bytes_pt[:, 1:] = tables.penalty_bytes.ravel().take(pair_flat).reshape(n, k - 1)
    transfer_pt = hostio_time_pt + pen_time_pt

    if np.isnan(transfer_pt).any():
        # Same rejection as execute_placements: only placements that actually
        # traverse a missing link fail, with the offending pair named.
        _, i, t = (int(v) for v in np.argwhere(np.isnan(transfer_pt))[0])
        current = tables.aliases[P[i, t]]
        if np.isnan(hostio_time_pt[:, i, t]).any():
            a, b = tables.host, current
        else:
            a = tables.host if t == 0 else tables.aliases[P[i, t - 1]]
            b = current
        raise KeyError(
            f"no link defined between {a!r} and {b!r} "
            f"(required by placement {placement_labels(P[i : i + 1], tables.aliases)[0]!r})"
        )

    # Left folds in task order: bitwise identical to the per-scenario loop.
    total_time = np.zeros((s, n))
    transferred = np.zeros(n)
    transfer_energy = np.zeros((s, n))
    busy_by_device = np.zeros((s, n, m))
    flops_by_device = np.zeros((n, m))
    rows = np.arange(n)
    for t in range(k):
        total_time += busy_pt[:, :, t] + transfer_pt[:, :, t]
        transferred += hostio_bytes_pt[:, t] + pen_bytes_pt[:, t]
        transfer_energy += energy_in_pt[:, :, t]
        transfer_energy += energy_out_pt[:, :, t]
        transfer_energy += pen_energy_pt[:, :, t]
        col = P[:, t]
        # Scatter-add instead of one masked add per device: each placement row
        # touches exactly one (row, device) cell per task (the index pairs are
        # unique, so plain fancy += is safe), and the accumulator never holds
        # -0.0 (it starts at +0.0 and busy times are >= 0), so dropping the
        # masked +0.0 additions of the other devices is bitwise neutral.
        busy_by_device[:, rows, col] += busy_pt[:, :, t]
        flops_by_device[rows, col] += tables.task_flops[t]

    return _finalize_grid(
        tables, P, total_time, transferred, transfer_energy, busy_by_device, flops_by_device
    )


def _finalize_grid(
    tables: GridCostTables,
    P: np.ndarray,
    total_time: np.ndarray,
    transferred: np.ndarray,
    transfer_energy: np.ndarray,
    busy_by_device: np.ndarray,
    flops_by_device: np.ndarray,
    busy_cols: tuple[np.ndarray, ...] | None = None,
) -> GridExecutionResult:
    """Per-device energy/cost finalization shared by the chain and graph grid engines.

    ``busy_cols`` optionally supplies contiguous per-device ``(s, n)`` views of
    ``busy_by_device`` (the chain fast path accumulates device-major planes);
    when absent, strided column views are taken.  The per-device active/idle
    energy terms are summed column by column -- each column's elementwise
    product and the fold order match the full-cube formulation exactly, so the
    totals are bitwise unchanged while the ``(s, n, m)`` breakdown cubes are
    deferred to :attr:`GridExecutionResult.active_j` / ``idle_j``.
    """
    s, n = total_time.shape
    if busy_cols is None:
        busy_cols = tuple(busy_by_device[:, :, j] for j in range(tables.n_devices))

    # Fold the per-device energy/cost terms in the shared device order,
    # exactly like execute_placements walks platform.devices; candidate
    # devices contribute active/idle/cost columns, the rest idle throughout.
    column = {alias: j for j, alias in enumerate(tables.aliases)}
    operating_cost = np.zeros((s, n))
    active_sum = np.zeros((s, n))
    idle_sum = np.zeros((s, n))
    # One reusable (s, n) staging buffer: each term is composed with explicit
    # out= steps -- the identical per-element operation sequence as the
    # expression form, without a fresh temporary per operation.
    scratch = np.empty((s, n))
    extra_position = 0
    for alias in tables.device_order:
        j = column.get(alias)
        if j is None:
            idle_w = tables.extra_idle_power[:, extra_position]
            extra_position += 1
            np.subtract(total_time, 0.0, out=scratch)
            np.maximum(scratch, 0.0, out=scratch)
            np.multiply(scratch, idle_w[:, None], out=scratch)
            np.add(idle_sum, scratch, out=idle_sum)
            continue
        b_j = busy_cols[j]
        np.multiply(tables.cost_per_hour[:, j, None], b_j, out=scratch)
        np.divide(scratch, 3600.0, out=scratch)
        np.add(operating_cost, scratch, out=operating_cost)
        np.multiply(b_j, tables.power_active[:, j, None], out=scratch)
        np.add(active_sum, scratch, out=active_sum)
        np.subtract(total_time, b_j, out=scratch)
        np.maximum(scratch, 0.0, out=scratch)
        np.multiply(scratch, tables.power_idle[:, j, None], out=scratch)
        np.add(idle_sum, scratch, out=idle_sum)
    # energy_total = (active + idle) + transfer, folded in place (active_sum
    # is not otherwise retained).
    np.add(active_sum, idle_sum, out=active_sum)
    np.add(active_sum, transfer_energy, out=active_sum)
    energy_total = active_sum

    return GridExecutionResult(
        tables=tables,
        placements=P,
        total_time_s=total_time,
        busy_by_device=busy_by_device,
        flops_by_device=flops_by_device,
        transferred_bytes=transferred,
        transfer_energy_j=transfer_energy,
        energy_total_j=energy_total,
        operating_cost=operating_cost,
    )


def _execute_graph_placements_grid(
    tables: GraphGridCostTables, P: np.ndarray
) -> GridExecutionResult:
    """Evaluate a DAG placement matrix under every condition in one pass.

    The grid analogue of the batch DAG engine: the same edge-ordered penalty
    folds, max-over-predecessors ready times and running-max critical path,
    with a leading condition axis -- every ``(scenario, placement)`` element
    is bitwise identical to ``execute_placements`` on the scenario's
    :class:`~repro.devices.batch.GraphCostTables`.
    """
    n, k = P.shape
    s, m = tables.n_scenarios, tables.n_devices
    preds = tables.pred_positions

    # Flat-index takes, as in the chain engine (bitwise-identical gathers).
    flat_cols = ((np.arange(k) * m)[None, :] + P).ravel()

    def take_sk(table: np.ndarray) -> np.ndarray:
        return table.reshape(s, k * m).take(flat_cols, axis=1).reshape(s, n, k)

    busy_pt = take_sk(tables.busy)  # (s, n, k)
    hostio_time_pt = take_sk(tables.hostio_time)
    hostio_bytes_pt = tables.hostio_bytes.ravel().take(flat_cols).reshape(n, k)  # (n, k)
    energy_in_pt = take_sk(tables.energy_in)
    energy_out_pt = take_sk(tables.energy_out)
    pen_time_pt = np.zeros((s, n, k))
    pen_energy_pt = np.zeros((s, n, k))
    pen_bytes_pt = np.zeros((n, k))
    pen_time_flat = tables.penalty_time.reshape(s, m * m)
    pen_energy_flat = tables.penalty_energy.reshape(s, m * m)
    pen_bytes_flat = tables.penalty_bytes.ravel()
    for t in range(k):
        dst = P[:, t]
        if preds[t]:
            for p in preds[t]:
                edge = P[:, p] * m + dst
                pen_time_pt[:, :, t] += pen_time_flat.take(edge, axis=1)
                pen_energy_pt[:, :, t] += pen_energy_flat.take(edge, axis=1)
                pen_bytes_pt[:, t] += pen_bytes_flat.take(edge)
        else:
            pen_time_pt[:, :, t] = tables.first_penalty_time.take(dst, axis=1)
            pen_energy_pt[:, :, t] = tables.first_penalty_energy.take(dst, axis=1)
            pen_bytes_pt[:, t] = tables.first_penalty_bytes.take(dst)
    transfer_pt = hostio_time_pt + pen_time_pt

    if tables.missing_links and np.isnan(transfer_pt).any():
        # Same rejection (and attribution) as the batch DAG engine, detecting
        # NaNs across the scenario axis.
        _, i, t = (int(v) for v in np.argwhere(np.isnan(transfer_pt))[0])
        _raise_graph_missing_link(
            tables.aliases,
            tables.host,
            preds[t],
            P,
            i,
            t,
            bool(np.isnan(hostio_time_pt[:, i, t]).any()),
            lambda p: bool(np.isnan(tables.penalty_time[:, P[i, p], P[i, t]]).any()),
        )

    total_time = np.zeros((s, n))
    finish = np.zeros((s, n, k))
    available = np.zeros((s, n, m))
    rows = np.arange(n)
    transferred = np.zeros(n)
    transfer_energy = np.zeros((s, n))
    busy_by_device = np.zeros((s, n, m))
    flops_by_device = np.zeros((n, m))
    for t in range(k):
        ready = np.zeros((s, n))
        for p in preds[t]:
            ready = np.maximum(ready, finish[:, :, p])
        # Device serialization, vectorized across the condition axis.
        start = np.maximum(ready, available[:, rows, P[:, t]])
        finish[:, :, t] = start + (busy_pt[:, :, t] + transfer_pt[:, :, t])
        available[:, rows, P[:, t]] = finish[:, :, t]
        total_time = np.maximum(total_time, finish[:, :, t])
        transferred += hostio_bytes_pt[:, t] + pen_bytes_pt[:, t]
        transfer_energy += energy_in_pt[:, :, t]
        transfer_energy += energy_out_pt[:, :, t]
        transfer_energy += pen_energy_pt[:, :, t]
        col = P[:, t]
        # Scatter-add: unique (row, device) pairs per task; see the chain
        # engine for the bitwise argument.
        busy_by_device[:, rows, col] += busy_pt[:, :, t]
        flops_by_device[rows, col] += tables.task_flops[t]

    return _finalize_grid(
        tables, P, total_time, transferred, transfer_energy, busy_by_device, flops_by_device
    )
