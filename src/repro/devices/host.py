"""Host-based executor: real NumPy execution plus accelerator emulation.

The paper measures real TensorFlow code on a CPU+GPU node; this environment
has neither a GPU nor TensorFlow, but the paper itself points out (footnote 2)
that other device/accelerator settings "can be simulated by adding artificial
delays and controlling the number of threads".  :class:`HostExecutor` follows
that recipe:

* tasks placed on the *host* device are **really executed** with NumPy/SciPy
  and timed with a monotonic timer;
* tasks placed on an accelerator are executed once on the host to preserve the
  numerical data flow (the penalty chain), and their *time contribution* is
  the emulated accelerator time: measured host time divided by the configured
  speed-up, plus the modelled transfer and dispatch overheads.

This gives genuinely noisy measurements (the host part is real) with a
controllable accelerator model, and is what the runnable examples use.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from ..measurement.dataset import MeasurementSet
from ..tasks.chain import TaskChain
from .platform import Platform

__all__ = ["HostExecutor"]


@dataclass
class HostExecutor:
    """Execute task chains on the local machine, emulating accelerators with artificial delays.

    Parameters
    ----------
    platform:
        Platform description; the host alias identifies which tasks run for real.
    accelerator_speedup:
        Emulated compute speed-up of non-host devices relative to the host for
        the *kernel* part of a task.  A mapping ``alias -> factor`` or a single
        factor applied to every accelerator.
    seed:
        Seed for the task input generation (keeps the numerics reproducible).
    """

    platform: Platform
    accelerator_speedup: float | dict[str, float] = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.accelerator_speedup, (int, float)):
            factor = float(self.accelerator_speedup)
            if factor <= 0:
                raise ValueError("accelerator_speedup must be positive")
            self._speedups = {alias: factor for alias in self.platform.accelerators}
        else:
            self._speedups = {alias: float(f) for alias, f in self.accelerator_speedup.items()}
            for alias, factor in self._speedups.items():
                if factor <= 0:
                    raise ValueError(f"accelerator_speedup[{alias!r}] must be positive")
        self.platform.validate_aliases(self._speedups)
        self._rng = np.random.default_rng(self.seed)

    def _speedup(self, alias: str) -> float:
        if alias == self.platform.host:
            return 1.0
        try:
            return self._speedups[alias]
        except KeyError as exc:
            raise KeyError(f"no emulated speed-up configured for accelerator {alias!r}") from exc

    # ------------------------------------------------------------------
    def run_once(self, chain: TaskChain, placement: Sequence[str] | str) -> float:
        """Execute the chain once and return the (partly emulated) execution time in seconds."""
        aliases = tuple(placement)
        if len(aliases) != len(chain):
            raise ValueError(
                f"placement {aliases!r} has {len(aliases)} entries but the chain has {len(chain)} tasks"
            )
        self.platform.validate_aliases(aliases)
        host = self.platform.host

        total = 0.0
        penalty = 0.0
        for task, alias in zip(chain, aliases):
            start = perf_counter()
            penalty = task.run(penalty, rng=self._rng)
            elapsed = perf_counter() - start
            if alias == host:
                total += elapsed
            else:
                cost = task.cost()
                device = self.platform.device(alias)
                emulated_compute = elapsed / self._speedup(alias)
                emulated_overheads = (
                    self.platform.transfer_time(host, alias, cost.input_bytes)
                    + self.platform.transfer_time(alias, host, cost.output_bytes)
                    + cost.kernel_calls * device.kernel_launch_overhead_s
                    + device.task_startup_overhead_s
                )
                total += emulated_compute + emulated_overheads
        return total

    def measure(
        self,
        chain: TaskChain,
        placement: Sequence[str] | str,
        repetitions: int = 10,
        warmup: int = 1,
    ) -> np.ndarray:
        """Measure one placement ``repetitions`` times (plus warm-up runs)."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        for _ in range(warmup):
            self.run_once(chain, placement)
        return np.array([self.run_once(chain, placement) for _ in range(repetitions)])

    def measure_all(
        self,
        chain: TaskChain,
        placements: Iterable[Sequence[str] | str],
        repetitions: int = 10,
        warmup: int = 1,
    ) -> MeasurementSet:
        """Measure several placements and return a labelled measurement set."""
        measurements = MeasurementSet(metric="execution time", unit="s")
        for placement in placements:
            label = "".join(placement)
            measurements.add(label, self.measure(chain, placement, repetitions, warmup))
        return measurements
