"""Named workloads: the paper's experiments plus extra application-flavoured chains.

Each factory returns a :class:`~repro.tasks.chain.TaskChain` ready to be
enumerated over devices and measured.  The two paper workloads are

* :func:`figure1_chain` -- two GEMM loops (small L1, large L2), the example of
  Figure 1a/1b;
* :func:`table1_chain`  -- three Regularised Least Squares MathTasks with sizes
  50, 75 and 300 (Procedure 5), the workload behind Table I.

The remaining factories model the application scenarios the introduction
motivates (multi-scale digital twins, hierarchical object detection) so the
examples exercise the public API on realistic shapes.
"""

from __future__ import annotations

from .chain import TaskChain
from .gemm import GemmLoopTask
from .graph import TaskGraph
from .rls import RegularizedLeastSquaresTask

__all__ = [
    "figure1_chain",
    "table1_chain",
    "multiscale_chain",
    "object_detection_chain",
    "fork_join_graph",
    "WORKLOADS",
    "get_workload",
]


def figure1_chain(
    small: int = 1200,
    large: int = 4096,
    inner: int = 88,
    iterations: int = 4,
) -> TaskChain:
    """The two-loop GEMM code of Figure 1a.

    ``L1`` is a loop of compact square multiplications (high arithmetic
    intensity, little data per FLOP), ``L2`` a loop of *larger* but
    low-intensity multiplications (``large x inner`` times ``inner x large``)
    whose big product matrices are consumed on the edge device.  On the
    simulated CPU+GPU platform this reproduces the Figure 1b shape: the
    accelerator speeds up L1 enough to amortise its transfers, whereas L2's
    much larger data movement roughly cancels its speed-up gain -- so ``AD``
    (only L1 offloaded) wins and ``DD`` / ``DA`` are equivalent.
    """
    return TaskChain(
        [
            GemmLoopTask(size=small, iterations=iterations, name="L1"),
            GemmLoopTask(
                size=(large, inner, large),
                iterations=iterations,
                name="L2",
                return_product=True,
            ),
        ],
        name="figure1-gemm-code",
    )


def table1_chain(loop_size: int = 10) -> TaskChain:
    """The three-MathTask Regularised Least Squares code of Procedure 5 (sizes 50/75/300)."""
    return TaskChain(
        [
            RegularizedLeastSquaresTask(size=50, iterations=loop_size, name="L1"),
            RegularizedLeastSquaresTask(size=75, iterations=loop_size, name="L2"),
            RegularizedLeastSquaresTask(size=300, iterations=loop_size, name="L3"),
        ],
        name="table1-rls-code",
    )


def multiscale_chain(scales: tuple[int, ...] = (40, 80, 160, 320), iterations: int = 6) -> TaskChain:
    """A multi-scale modelling hierarchy: one RLS solve per scale, coarse to fine.

    Models the digital-twin scenario of Section I: each scale's result
    (penalty) parameterises the next, finer simulation.
    """
    if len(scales) < 2:
        raise ValueError("a multi-scale hierarchy needs at least two scales")
    tasks = [
        RegularizedLeastSquaresTask(size=size, iterations=iterations, name=f"scale{i + 1}")
        for i, size in enumerate(scales)
    ]
    return TaskChain(tasks, name="multiscale-digital-twin")


def object_detection_chain(
    low_fidelity: int = 96,
    high_fidelity: int = 768,
    frames: int = 4,
) -> TaskChain:
    """Hierarchical object detection: a cheap low-fidelity pass and an expensive refinement.

    The on-board detector (small GEMM loop per frame) must stay responsive,
    while the high-fidelity correction pass (large GEMM loop) can be offloaded;
    this mirrors the YOLO/SSD scenario of Section I.
    """
    return TaskChain(
        [
            GemmLoopTask(size=low_fidelity, iterations=frames, name="detect"),
            GemmLoopTask(size=high_fidelity, iterations=frames, name="refine"),
        ],
        name="hierarchical-object-detection",
    )


def fork_join_graph(
    branches: int = 3,
    prepare_size: int = 90,
    branch_size: int = 260,
    reduce_size: int = 130,
    iterations: int = 12,
) -> TaskGraph:
    """A fork-join scientific code: ``prep -> {b1..bN} -> join``.

    A preparation solve fans out into ``branches`` independent refinement
    solves (one per model variant) whose penalties are reduced by a final
    join solve.  The branches carry most of the FLOPs and generate their
    data on the executing device (latency- rather than byte-bound), so
    placing them on *different* devices overlaps their compute -- the
    workload where a DAG-aware placement beats any chain-linearized one.
    """
    if branches < 2:
        raise ValueError("a fork-join graph needs at least two branches")
    prep = RegularizedLeastSquaresTask(
        size=prepare_size, iterations=iterations, name="prep", generate_on_host=False
    )
    branch_tasks = [
        RegularizedLeastSquaresTask(
            size=branch_size, iterations=iterations, name=f"b{i + 1}", generate_on_host=False
        )
        for i in range(branches)
    ]
    join = RegularizedLeastSquaresTask(
        size=reduce_size, iterations=iterations, name="join", generate_on_host=False
    )
    edges = [("prep", task.name) for task in branch_tasks]
    edges += [(task.name, "join") for task in branch_tasks]
    return TaskGraph([prep, *branch_tasks, join], edges=edges, name="fork-join-code")


#: Registry of named workloads used by the experiment harness and the examples.
WORKLOADS = {
    "figure1": figure1_chain,
    "table1": table1_chain,
    "multiscale": multiscale_chain,
    "object-detection": object_detection_chain,
}


def get_workload(name: str, **kwargs) -> TaskChain:
    """Instantiate a registered workload by name."""
    try:
        factory = WORKLOADS[name]
    except KeyError as exc:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}") from exc
    return factory(**kwargs)
