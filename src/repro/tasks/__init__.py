"""Linear-algebra task substrate: MathTasks, task chains/graphs, FLOP accounting, workloads."""

from .chain import TaskChain
from .graph import TaskGraph
from .flops import (
    cholesky_flops,
    frobenius_norm_flops,
    gemm_flops,
    gemv_flops,
    matrix_add_flops,
    regularized_least_squares_flops,
    spd_solve_flops,
    syrk_flops,
    triangular_solve_flops,
)
from .gemm import GemmLoopTask
from .rls import RegularizedLeastSquaresTask
from .task import FLOAT64_BYTES, MathTask, TaskCost
from .workloads import (
    WORKLOADS,
    figure1_chain,
    fork_join_graph,
    get_workload,
    multiscale_chain,
    object_detection_chain,
    table1_chain,
)

__all__ = [
    "MathTask",
    "TaskCost",
    "TaskChain",
    "TaskGraph",
    "GemmLoopTask",
    "RegularizedLeastSquaresTask",
    "FLOAT64_BYTES",
    "gemm_flops",
    "gemv_flops",
    "syrk_flops",
    "cholesky_flops",
    "triangular_solve_flops",
    "spd_solve_flops",
    "matrix_add_flops",
    "frobenius_norm_flops",
    "regularized_least_squares_flops",
    "figure1_chain",
    "table1_chain",
    "multiscale_chain",
    "object_detection_chain",
    "fork_join_graph",
    "WORKLOADS",
    "get_workload",
]
