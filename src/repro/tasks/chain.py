"""Scientific code = an ordered chain of dependent MathTasks (Procedure 5).

A :class:`TaskChain` is the paper's "scientific code": a sequence of loops
``L1, L2, ..., Lk`` where each loop consumes the scalar penalty produced by the
previous one and can be placed on any device.  The chain is what the offload
package enumerates placements over and what the executors run.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from .task import MathTask, TaskCost

__all__ = ["TaskChain"]


class TaskChain:
    """An ordered, data-dependent sequence of :class:`MathTask` objects.

    Parameters
    ----------
    tasks:
        The tasks, in execution order.  Task names must be unique.
    name:
        Name of the scientific code (used in reports).
    """

    def __init__(self, tasks: Sequence[MathTask], name: str = "scientific-code") -> None:
        task_list = list(tasks)
        if not task_list:
            raise ValueError("a task chain needs at least one task")
        names = [task.name for task in task_list]
        if len(set(names)) != len(names):
            raise ValueError(f"task names must be unique, got {names}")
        self.tasks: tuple[MathTask, ...] = tuple(task_list)
        self.name = name

    # -- sequence protocol --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[MathTask]:
        return iter(self.tasks)

    def __getitem__(self, index: int) -> MathTask:
        return self.tasks[index]

    @property
    def task_names(self) -> list[str]:
        return [task.name for task in self.tasks]

    # -- aggregate costs ----------------------------------------------------------
    def costs(self) -> list[TaskCost]:
        """Per-task analytic cost profiles, in execution order."""
        return [task.cost() for task in self.tasks]

    @property
    def total_flops(self) -> float:
        """Total FLOPs of the whole code, regardless of placement."""
        return float(sum(task.flops for task in self.tasks))

    def flops_by_task(self) -> dict[str, float]:
        return {task.name: task.flops for task in self.tasks}

    # -- execution ----------------------------------------------------------------
    def run(self, rng: np.random.Generator | None = None) -> float:
        """Execute the whole chain on the local machine and return the final penalty.

        This runs every task sequentially with NumPy (no devices involved); the
        placement-aware executors live in :mod:`repro.devices` and
        :mod:`repro.offload`.
        """
        generator = rng if rng is not None else np.random.default_rng()
        penalty = 0.0
        for task in self.tasks:
            penalty = task.run(penalty, rng=generator)
        return penalty

    def subchain(self, names: Iterable[str]) -> "TaskChain":
        """A new chain restricted to the named tasks (original order preserved)."""
        wanted = list(names)
        unknown = set(wanted) - set(self.task_names)
        if unknown:
            raise KeyError(
                f"unknown tasks {sorted(unknown)}; available: {self.task_names}"
            )
        picked = [task for task in self.tasks if task.name in wanted]
        return TaskChain(picked, name=f"{self.name}[{','.join(wanted)}]")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskChain(name={self.name!r}, tasks={self.task_names})"
