"""Matrix-matrix multiplication loop task (the Figure 1 workload).

Figure 1a of the paper shows a scientific code with two loops, each calling a
matrix-matrix multiplication; offloading either loop to the accelerator gives
the four algorithms DD / DA / AD / AA whose timing distributions appear in
Figure 1b.  :class:`GemmLoopTask` models one such loop; it supports both
square and rectangular products and can optionally require the product matrix
to be shipped back to the host, which is what makes the *larger* multiplication
of Figure 1 unattractive to offload ("the overhead caused by the larger
data-movement between CPU and GPU is slightly more than the speed-up gain").
"""

from __future__ import annotations

import numpy as np

from .flops import frobenius_norm_flops, gemm_flops
from .task import FLOAT64_BYTES, MathTask, TaskCost

__all__ = ["GemmLoopTask"]


class GemmLoopTask(MathTask):
    """A loop of ``iterations`` matrix-matrix multiplications ``C (m x n) = A (m x k) @ B (k x n)``.

    Each iteration generates fresh input matrices, multiplies them and folds
    the result into the scalar penalty (so that consecutive loops are
    data-dependent, as required by the paper: "L2 cannot be executed before
    the completion of L1").

    Parameters
    ----------
    size:
        Either a single integer (square ``size x size`` product) or a
        ``(m, k, n)`` shape tuple.
    iterations:
        Number of multiplications in the loop.
    name:
        Task label (``"L1"``, ``"L2"``, ...).
    generate_on_host:
        If True (default), input matrices are considered to be produced on the
        host/edge device and must be shipped to the accelerator when the loop
        is offloaded.
    return_product:
        If True, the product matrix itself is a result consumed on the host
        (e.g. fed to a downstream consumer there) and must be shipped back
        when the loop is offloaded; otherwise only the scalar penalty returns.
    """

    def __init__(
        self,
        size: int | tuple[int, int, int],
        iterations: int = 1,
        name: str = "gemm",
        generate_on_host: bool = True,
        return_product: bool = False,
    ) -> None:
        super().__init__(name)
        if isinstance(size, (int, np.integer)):
            shape = (int(size), int(size), int(size))
        else:
            shape = tuple(int(s) for s in size)
            if len(shape) != 3:
                raise ValueError("size must be an int or a (m, k, n) tuple")
        if any(s <= 0 for s in shape):
            raise ValueError("matrix dimensions must be positive")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.m, self.k, self.n = shape
        self.iterations = int(iterations)
        self.generate_on_host = generate_on_host
        self.return_product = return_product

    @property
    def shape(self) -> tuple[int, int, int]:
        """The ``(m, k, n)`` product shape."""
        return (self.m, self.k, self.n)

    def cost(self) -> TaskCost:
        m, k, n = self.shape
        per_iteration_flops = gemm_flops(m, n, k) + frobenius_norm_flops(m, n)
        input_bytes_per_iteration = (m * k + k * n) * FLOAT64_BYTES
        product_bytes = m * n * FLOAT64_BYTES
        input_bytes = (
            float(input_bytes_per_iteration * self.iterations)
            if self.generate_on_host
            else float(FLOAT64_BYTES)
        )
        output_bytes = (
            float(product_bytes * self.iterations) if self.return_product else float(FLOAT64_BYTES)
        )
        return TaskCost(
            flops=per_iteration_flops * self.iterations,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            working_set_bytes=float((m * k + k * n + m * n) * FLOAT64_BYTES),
            kernel_calls=2 * self.iterations,
        )

    def run(self, penalty: float = 0.0, rng: np.random.Generator | None = None) -> float:
        generator = rng if rng is not None else np.random.default_rng()
        m, k, n = self.shape
        for _ in range(self.iterations):
            a = generator.standard_normal((m, k))
            b = generator.standard_normal((k, n))
            c = a @ b
            penalty = float(np.linalg.norm(c) ** 2 / (m * n) + 1e-9 * penalty)
        return penalty
