"""Task abstraction: the unit of work that can be placed on a device.

A :class:`MathTask` is one "loop" of the paper's scientific code (Procedure 5):
a block of dense linear algebra that must run entirely on one device and whose
only inter-task dependency is a small scalar (the ``penalty``).  A task exposes

* a **cost profile** (:class:`TaskCost`): FLOPs, bytes that must be shipped to
  the executing device, bytes returned, and the number of kernel launches --
  this is what the analytic device simulator consumes; and
* an actual NumPy/SciPy implementation (:meth:`MathTask.run`) -- this is what
  the host executor times for real measurements.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["TaskCost", "MathTask"]

#: Bytes per double-precision floating point number.
FLOAT64_BYTES = 8


@dataclass(frozen=True)
class TaskCost:
    """Analytic cost profile of one task."""

    #: Total floating point operations performed by the task.
    flops: float
    #: Bytes that must be present on the executing device before the task starts
    #: (inputs generated or stored on the host device).
    input_bytes: float
    #: Bytes of results shipped back to the host device after the task ends.
    output_bytes: float
    #: Bytes the task touches in device memory while executing (drives the
    #: memory-bound branch of the device roofline model).
    working_set_bytes: float
    #: Number of individual kernel launches (each pays a launch overhead on
    #: accelerators; loops of small kernels are launch-bound on GPUs).
    kernel_calls: int

    def __post_init__(self) -> None:
        for name in ("flops", "input_bytes", "output_bytes", "working_set_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.kernel_calls < 1:
            raise ValueError("kernel_calls must be at least 1")

    @property
    def transferred_bytes(self) -> float:
        """Total bytes crossing the interconnect when the task is offloaded."""
        return self.input_bytes + self.output_bytes

    def scaled(self, factor: float) -> "TaskCost":
        """Cost of repeating the task ``factor`` times (kernel calls round up)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return TaskCost(
            flops=self.flops * factor,
            input_bytes=self.input_bytes * factor,
            output_bytes=self.output_bytes * factor,
            working_set_bytes=self.working_set_bytes,
            kernel_calls=max(1, int(round(self.kernel_calls * factor))),
        )


class MathTask(abc.ABC):
    """One loop of the scientific code: runs on exactly one device.

    Subclasses must provide a :meth:`cost` profile and a :meth:`run`
    implementation.  ``run`` takes the scalar ``penalty`` produced by the
    previous task and returns the updated penalty, mirroring Procedure 6.
    """

    #: Human-readable task name (e.g. ``"L1"``).
    name: str

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("task name must be non-empty")
        self.name = name

    @abc.abstractmethod
    def cost(self) -> TaskCost:
        """Analytic cost profile of the task."""

    @abc.abstractmethod
    def run(self, penalty: float = 0.0, rng: np.random.Generator | None = None) -> float:
        """Execute the task with NumPy/SciPy and return the updated penalty."""

    # Convenience accessors -------------------------------------------------
    @property
    def flops(self) -> float:
        """Total FLOPs of the task (shortcut for ``cost().flops``)."""
        return self.cost().flops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
