"""Floating-point operation counts for dense linear-algebra kernels.

The paper uses the number of FLOPs an algorithm executes *on a particular
device* as the proxy for that device's energy consumption (Section IV).  The
formulas below are the standard dense-linear-algebra operation counts (see
Golub & Van Loan); they are used both by the task models (to drive the device
simulator) and by the FLOPs-budget selection policy.

All counts are returned as floats to avoid integer overflow for large sizes.
"""

from __future__ import annotations

__all__ = [
    "gemm_flops",
    "syrk_flops",
    "gemv_flops",
    "cholesky_flops",
    "triangular_solve_flops",
    "spd_solve_flops",
    "matrix_add_flops",
    "scalar_matrix_flops",
    "frobenius_norm_flops",
    "regularized_least_squares_flops",
]


def _check_positive(**dims: int) -> None:
    for name, value in dims.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


def gemm_flops(m: int, n: int, k: int) -> float:
    """C (m x n) = A (m x k) @ B (k x n): ``2 m n k`` flops."""
    _check_positive(m=m, n=n, k=k)
    return 2.0 * m * n * k


def syrk_flops(n: int, k: int) -> float:
    """Symmetric rank-k update C (n x n) = A^T A with A (k x n): ``n (n + 1) k`` flops."""
    _check_positive(n=n, k=k)
    return float(n) * (n + 1) * k


def gemv_flops(m: int, n: int) -> float:
    """Matrix-vector product y (m) = A (m x n) x: ``2 m n`` flops."""
    _check_positive(m=m, n=n)
    return 2.0 * m * n


def cholesky_flops(n: int) -> float:
    """Cholesky factorisation of an n x n SPD matrix: ``n^3 / 3`` flops (leading order)."""
    _check_positive(n=n)
    return n**3 / 3.0


def triangular_solve_flops(n: int, nrhs: int) -> float:
    """Triangular solve with ``nrhs`` right-hand sides: ``n^2 nrhs`` flops."""
    _check_positive(n=n, nrhs=nrhs)
    return float(n) * n * nrhs


def spd_solve_flops(n: int, nrhs: int) -> float:
    """Solve an SPD system for ``nrhs`` right-hand sides via Cholesky.

    Factorisation (``n^3/3``) plus two triangular solves (``2 n^2 nrhs``).
    """
    return cholesky_flops(n) + 2.0 * triangular_solve_flops(n, nrhs)


def matrix_add_flops(m: int, n: int) -> float:
    """Entry-wise addition of two m x n matrices: ``m n`` flops."""
    _check_positive(m=m, n=n)
    return float(m) * n


def scalar_matrix_flops(m: int, n: int) -> float:
    """Scaling of an m x n matrix by a scalar: ``m n`` flops."""
    _check_positive(m=m, n=n)
    return float(m) * n


def frobenius_norm_flops(m: int, n: int) -> float:
    """Squared Frobenius norm of an m x n matrix: ``2 m n`` flops (square + accumulate)."""
    _check_positive(m=m, n=n)
    return 2.0 * m * n


def regularized_least_squares_flops(size: int) -> float:
    """FLOPs of one iteration of the paper's MathTask body (Procedure 6, line 4-5).

    With square ``size x size`` matrices ``A`` and ``B``::

        Z       = (A^T A + penalty * I)^-1 A^T B
        penalty = || A Z - B ||^2

    counted as: ``A^T A`` (syrk), the diagonal shift, ``A^T B`` (gemm), the SPD
    solve with ``size`` right-hand sides, ``A Z`` (gemm), the residual
    subtraction and the squared Frobenius norm.
    """
    _check_positive(size=size)
    n = size
    return (
        syrk_flops(n, n)                     # A^T A
        + n                                  # + penalty * I (diagonal only)
        + gemm_flops(n, n, n)                # A^T B
        + spd_solve_flops(n, n)              # (A^T A + pI)^-1 (A^T B)
        + gemm_flops(n, n, n)                # A Z
        + matrix_add_flops(n, n)             # A Z - B
        + frobenius_norm_flops(n, n)         # ||.||^2
    )
