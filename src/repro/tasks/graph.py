"""Scientific code as a DAG of dependent MathTasks: the general workload model.

The paper's Procedure 5 models a scientific code as a *linear chain* of loops,
each consuming the scalar penalty of the previous one.  Real offloadable codes
branch and join: a preparation stage fans out into independent refinement
branches whose results are reduced again.  A :class:`TaskGraph` generalizes
:class:`~repro.tasks.chain.TaskChain` to an arbitrary directed acyclic graph:

* **nodes** are :class:`~repro.tasks.task.MathTask` objects (unique names);
* **edges** are data dependencies: ``(src, dst)`` means ``dst`` consumes the
  scalar penalty produced by ``src``.  A task with several incoming edges
  (fan-in join) consumes the *sum* of its predecessors' penalties; a task with
  several outgoing edges (fan-out) produces its penalty once and every
  successor reads it.

The graph is validated to be acyclic at construction and exposes a
**deterministic** topological order: tasks are grouped into longest-path
levels (a task's level is one more than the deepest of its predecessors) and
sorted by name within each level.  The order therefore depends only on the
``(names, edges)`` structure -- permuting the insertion order of the tasks
changes nothing downstream, which is what lets every placement-space layer
index tasks by topological position.

A linear graph (every level holds one task, consecutive levels connected) is
exactly a :class:`TaskChain`: :meth:`TaskGraph.from_chain` embeds a chain, and
the devices layer reproduces the chain's results bitwise on such graphs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from .chain import TaskChain
from .task import MathTask, TaskCost

__all__ = ["TaskGraph"]


class TaskGraph:
    """A directed acyclic graph of :class:`MathTask` objects.

    Parameters
    ----------
    tasks:
        The tasks (the nodes).  Names must be unique; insertion order is
        irrelevant -- tasks are canonically reordered topologically.
    edges:
        Data dependencies as ``(src_name, dst_name)`` pairs.  Self-edges,
        duplicate edges, unknown names and cycles are rejected.
    name:
        Name of the scientific code (used in reports).
    """

    def __init__(
        self,
        tasks: Sequence[MathTask],
        edges: Iterable[tuple[str, str]] = (),
        name: str = "scientific-code",
    ) -> None:
        task_list = list(tasks)
        if not task_list:
            raise ValueError("a task graph needs at least one task")
        names = [task.name for task in task_list]
        if len(set(names)) != len(names):
            raise ValueError(f"task names must be unique, got {names}")
        by_name = {task.name: task for task in task_list}

        edge_list: list[tuple[str, str]] = []
        seen_edges: set[tuple[str, str]] = set()
        for src, dst in edges:
            if src not in by_name or dst not in by_name:
                unknown = sorted({src, dst} - set(by_name))
                raise KeyError(f"edge ({src!r}, {dst!r}) references unknown tasks {unknown}")
            if src == dst:
                raise ValueError(f"self-dependency {src!r} -> {dst!r} is not allowed")
            if (src, dst) in seen_edges:
                raise ValueError(f"duplicate edge ({src!r}, {dst!r})")
            seen_edges.add((src, dst))
            edge_list.append((src, dst))

        preds_by_name: dict[str, list[str]] = {n: [] for n in by_name}
        succs_by_name: dict[str, list[str]] = {n: [] for n in by_name}
        for src, dst in edge_list:
            preds_by_name[dst].append(src)
            succs_by_name[src].append(dst)

        # Longest-path leveling (Kahn by levels): level(t) = 1 + max(level of
        # predecessors).  Within a level tasks are sorted by name, so the
        # resulting order is a pure function of (names, edges) -- independent
        # of insertion order.
        level_of: dict[str, int] = {}
        remaining = set(by_name)
        levels: list[tuple[str, ...]] = []
        while remaining:
            ready = sorted(
                n for n in remaining if all(p in level_of for p in preds_by_name[n])
            )
            if not ready:
                raise ValueError(
                    f"task graph contains a dependency cycle among {sorted(remaining)}"
                )
            for n in ready:
                level_of[n] = len(levels)
            levels.append(tuple(ready))
            remaining -= set(ready)

        order = [n for level in levels for n in level]
        position = {n: i for i, n in enumerate(order)}

        self.name = name
        self.tasks: tuple[MathTask, ...] = tuple(by_name[n] for n in order)
        self.levels: tuple[tuple[str, ...], ...] = tuple(levels)
        #: Edges in canonical order: grouped by destination (topological
        #: position), predecessors sorted by topological position.  This is
        #: the exact fold order of every fan-in accumulation downstream.
        self.edges: tuple[tuple[str, str], ...] = tuple(
            (order[p], dst)
            for dst in order
            for p in sorted(position[src] for src in preds_by_name[dst])
        )
        #: Per topological position, the topological positions of the task's
        #: predecessors (ascending).  Empty = source task (fed from the host).
        self.predecessor_positions: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(position[src] for src in preds_by_name[n])) for n in order
        )

    # -- structure ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[MathTask]:
        return iter(self.tasks)

    def __getitem__(self, index: int) -> MathTask:
        return self.tasks[index]

    @property
    def task_names(self) -> list[str]:
        """Task names in the canonical topological order."""
        return [task.name for task in self.tasks]

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def predecessors(self, name: str) -> tuple[str, ...]:
        """Names of the tasks feeding ``name``, in topological order."""
        index = self._position(name)
        return tuple(self.tasks[p].name for p in self.predecessor_positions[index])

    def successors(self, name: str) -> tuple[str, ...]:
        """Names of the tasks consuming ``name``'s penalty, in topological order."""
        self._position(name)
        return tuple(dst for src, dst in self.edges if src == name)

    @property
    def sources(self) -> tuple[str, ...]:
        """Tasks with no predecessors (their inputs originate on the host)."""
        return tuple(
            task.name
            for task, preds in zip(self.tasks, self.predecessor_positions)
            if not preds
        )

    @property
    def sinks(self) -> tuple[str, ...]:
        """Tasks whose penalty nothing consumes (the code's final results)."""
        with_successors = {src for src, _ in self.edges}
        return tuple(task.name for task in self.tasks if task.name not in with_successors)

    @property
    def is_linear(self) -> bool:
        """True when the graph is a chain: one task per level, each fed by the previous."""
        if any(len(level) != 1 for level in self.levels):
            return False
        return all(
            preds == ((i - 1,) if i else ())
            for i, preds in enumerate(self.predecessor_positions)
        )

    def _position(self, name: str) -> int:
        for i, task in enumerate(self.tasks):
            if task.name == name:
                return i
        raise KeyError(f"unknown task {name!r}; available: {self.task_names}")

    # -- chain interop ------------------------------------------------------------
    @classmethod
    def from_chain(cls, chain: TaskChain, name: str | None = None) -> "TaskGraph":
        """The linear graph of a chain: each task feeds the next."""
        names = chain.task_names
        return cls(
            chain.tasks,
            edges=list(zip(names[:-1], names[1:])),
            name=chain.name if name is None else name,
        )

    def to_chain(self) -> TaskChain:
        """The chain this graph is, when it is linear (raises otherwise)."""
        if not self.is_linear:
            raise ValueError(
                f"graph {self.name!r} is not linear (levels: "
                f"{[list(level) for level in self.levels]}); use linearized_chain() "
                f"to serialize it in topological order"
            )
        return TaskChain(self.tasks, name=self.name)

    def linearized_chain(self) -> TaskChain:
        """The chain-model serialization: tasks in topological order, dependencies
        collapsed to consecutive-task ones.

        This is the workload the chain-only pipeline would have modeled -- the
        baseline a DAG-aware placement is compared against.
        """
        return TaskChain(self.tasks, name=f"{self.name}[linearized]")

    # -- aggregate costs ----------------------------------------------------------
    def costs(self) -> list[TaskCost]:
        """Per-task analytic cost profiles, in topological order."""
        return [task.cost() for task in self.tasks]

    @property
    def total_flops(self) -> float:
        """Total FLOPs of the whole code, regardless of placement."""
        return float(sum(task.flops for task in self.tasks))

    def flops_by_task(self) -> dict[str, float]:
        return {task.name: task.flops for task in self.tasks}

    # -- execution ----------------------------------------------------------------
    def run(self, rng: np.random.Generator | None = None) -> float:
        """Execute the graph on the local machine and return the final penalty.

        Tasks run in topological order; each consumes the sum of its
        predecessors' penalties (0 for sources), and the returned value is the
        sum over sink tasks -- for a linear graph this is exactly
        :meth:`TaskChain.run`.
        """
        generator = rng if rng is not None else np.random.default_rng()
        penalties: list[float] = []
        for task, preds in zip(self.tasks, self.predecessor_positions):
            incoming = 0.0
            for p in preds:
                incoming += penalties[p]
            penalties.append(task.run(incoming, rng=generator))
        with_successors = {src for src, _ in self.edges}
        final = 0.0
        for task, penalty in zip(self.tasks, penalties):
            if task.name not in with_successors:
                final += penalty
        return final

    def subgraph(self, names: Iterable[str]) -> "TaskGraph":
        """The induced subgraph restricted to the named tasks (edges between them kept)."""
        wanted = list(names)
        unknown = set(wanted) - set(self.task_names)
        if unknown:
            raise KeyError(f"unknown tasks {sorted(unknown)}; available: {self.task_names}")
        kept = set(wanted)
        return TaskGraph(
            [task for task in self.tasks if task.name in kept],
            edges=[(src, dst) for src, dst in self.edges if src in kept and dst in kept],
            name=f"{self.name}[{','.join(wanted)}]",
        )

    def placement_for(self, assignment: Mapping[str, str]) -> tuple[str, ...]:
        """Translate a ``task name -> device alias`` mapping into the positional
        placement every executor consumes (topological order)."""
        unknown = set(assignment) - set(self.task_names)
        if unknown:
            raise KeyError(f"unknown tasks {sorted(unknown)}; available: {self.task_names}")
        missing = [n for n in self.task_names if n not in assignment]
        if missing:
            raise KeyError(f"assignment misses tasks {missing}")
        return tuple(assignment[n] for n in self.task_names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskGraph(name={self.name!r}, tasks={self.task_names}, "
            f"edges={list(self.edges)})"
        )
