"""Regularised Least Squares loop task (Procedure 6 of the paper).

The Table I experiment runs a scientific code of three ``MathTask`` calls with
sizes 50, 75 and 300.  Each MathTask solves, in a loop, the Tikhonov-regularised
least-squares problem

.. math::

    Z = (A^T A + \\lambda I)^{-1} A^T B, \\qquad \\lambda' = \\lVert A Z - B \\rVert^2

where the penalty :math:`\\lambda` produced by one iteration regularises the
next one, and the penalty of the last iteration is passed to the next MathTask
(so the tasks cannot run concurrently).

Following the HPC guide's advice to prefer structured solvers over generic
inverses, the implementation factorises the SPD Gram matrix with Cholesky
(:func:`scipy.linalg.cho_factor` / :func:`scipy.linalg.cho_solve`) instead of
forming an explicit inverse.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from .flops import regularized_least_squares_flops
from .task import FLOAT64_BYTES, MathTask, TaskCost

__all__ = ["RegularizedLeastSquaresTask"]


class RegularizedLeastSquaresTask(MathTask):
    """A loop of ``iterations`` Regularised Least Squares solves with ``size x size`` data.

    Parameters
    ----------
    size:
        Matrix dimension of ``A`` and ``B`` (the paper uses 50, 75 and 300).
    iterations:
        Loop length ``n`` of Procedure 6 (the paper discusses ``n = 10``).
    name:
        Task label (``"L1"``, ``"L2"``, ``"L3"``).
    generate_on_host:
        Whether the random input matrices originate on the host/edge device and
        therefore have to cross the interconnect when the task is offloaded.
    """

    def __init__(
        self,
        size: int,
        iterations: int = 10,
        name: str = "rls",
        generate_on_host: bool = True,
    ) -> None:
        super().__init__(name)
        if size <= 0:
            raise ValueError("size must be positive")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.size = int(size)
        self.iterations = int(iterations)
        self.generate_on_host = generate_on_host

    def cost(self) -> TaskCost:
        n = self.size
        matrix_bytes = n * n * FLOAT64_BYTES
        input_bytes = (
            2.0 * matrix_bytes * self.iterations if self.generate_on_host else FLOAT64_BYTES
        )
        return TaskCost(
            flops=regularized_least_squares_flops(n) * self.iterations,
            input_bytes=input_bytes,
            output_bytes=float(FLOAT64_BYTES),  # only the scalar penalty returns
            working_set_bytes=5.0 * matrix_bytes,  # A, B, Gram, RHS, Z
            # One iteration issues roughly 6 kernels: syrk, shift, gemm, potrf,
            # trsm-solve, gemm + norm fused estimate.
            kernel_calls=6 * self.iterations,
        )

    def run(self, penalty: float = 0.0, rng: np.random.Generator | None = None) -> float:
        generator = rng if rng is not None else np.random.default_rng()
        n = self.size
        for _ in range(self.iterations):
            a = generator.standard_normal((n, n))
            b = generator.standard_normal((n, n))
            gram = a.T @ a
            # Regularisation keeps the Gram matrix SPD even for tiny penalties.
            gram.flat[:: n + 1] += abs(penalty) + 1e-8
            rhs = a.T @ b
            factor = linalg.cho_factor(gram, lower=True, check_finite=False)
            z = linalg.cho_solve(factor, rhs, check_finite=False)
            residual = a @ z - b
            penalty = float(np.sum(residual * residual))
        return penalty
