"""Content-addressed fingerprints and the bounded cost-table cache.

Cost tables are a pure function of ``(workload, platform(s), scenarios,
faults, retry, timeout)`` -- the paper's methodology computes them once per
configuration and everything downstream is reuse.  This module provides the
two pieces that make that reuse safe across object identities and process
boundaries:

* :func:`fingerprint` -- a **stable** SHA-256 content hash over canonicalized
  field tuples.  Two structurally equal platforms (or workloads, scenarios,
  fault profiles, policies) fingerprint identically regardless of object
  identity, dict insertion order of *non-semantic* mappings, or Python
  process (no salted ``hash()`` anywhere).  Orders that carry meaning are
  kept: a platform's device insertion order defines its alias order, and a
  scenario grid's row order defines the scenario axis of every grid table,
  so both stay part of the content.  Graph node insertion order does *not*
  carry meaning (:class:`~repro.tasks.graph.TaskGraph` reorders tasks into a
  canonical topological order at construction), so permuting it leaves the
  fingerprint unchanged.
* :class:`TableCache` -- a bounded LRU mapping composite fingerprints to
  built objects, capped by entry count and estimated byte size, with
  hit/miss/evict counters.  :class:`~repro.devices.simulator.SimulatedExecutor`
  keeps one for cost tables and one for execution records, and the service
  layer shares a single table cache across platform executors.

Floats are canonicalized via :meth:`float.hex` (exact, bitwise, handles
``inf``/``nan``), so fingerprints never depend on ``repr`` rounding.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from collections import OrderedDict
from collections.abc import Mapping
from functools import lru_cache
from typing import Any, Callable, Hashable

import numpy as np

__all__ = [
    "CacheStats",
    "TableCache",
    "canonical",
    "estimate_nbytes",
    "fingerprint",
    "table_key",
    "table_key_from_fingerprint",
]


# ---------------------------------------------------------------------------
# canonical forms
# ---------------------------------------------------------------------------


def _canonical_float(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "float:nan"
    return f"float:{value.hex()}"


def _canonical_dataclass(obj: Any) -> tuple:
    pairs = tuple(
        (field.name, canonical(getattr(obj, field.name)))
        for field in dataclasses.fields(obj)
    )
    return (type(obj).__name__, pairs)


_CANONICAL_ATTR = "_repro_canonical"


@lru_cache(maxsize=None)
def _condition_axis_class() -> type:
    from .scenarios.conditions import ConditionAxis

    return ConditionAxis


@lru_cache(maxsize=None)
def _scenario_class() -> type:
    from .scenarios.conditions import Scenario

    return Scenario


def _canonical_scenario(obj: Any) -> tuple:
    """Direct canonical form of a :class:`Scenario` -- the grid-fingerprint
    hot path.

    Bitwise-identical to :func:`_canonical_dataclass` output (pinned by
    tests), but assembled without the generic field walk: ``__post_init__``
    guarantees ``settings`` is a tuple of ``(axis, float)`` pairs and axes
    carry a memoized canonical form, so a 10**5-scenario fleet fingerprints
    without 10**6 recursive ``canonical`` dispatches.
    """
    settings = tuple(
        (_canonical_condition_axis(axis), _canonical_float(value))
        for axis, value in obj.settings
    )
    return (
        "Scenario",
        (
            ("name", obj.name),
            ("settings", settings),
            ("weight", _canonical_float(obj.weight)),
        ),
    )


@lru_cache(maxsize=None)
def _domain_classes() -> tuple:
    # Late imports memoized once: cache is a leaf module every layer above may
    # import, but re-running the import machinery on every recursive
    # ``canonical`` call dominates grid fingerprinting at fleet scale.
    from .devices.platform import Platform
    from .tasks.chain import TaskChain
    from .tasks.graph import TaskGraph
    from .tasks.task import MathTask

    return Platform, TaskChain, TaskGraph, MathTask


def _canonical_condition_axis(obj: Any) -> tuple:
    """Canonical form of a condition axis, memoized on the instance.

    A sampled fleet references the *same* handful of frozen axis objects from
    every one of its (possibly 10**5) scenarios; re-walking the axis dataclass
    per scenario dominates grid fingerprinting at fleet scale.  Axes are
    frozen value types with primitive fields, so the canonical tuple is stable
    for the instance's lifetime and the memo cannot go stale.
    """
    cached = getattr(obj, _CANONICAL_ATTR, None)
    if cached is None:
        cached = _canonical_dataclass(obj)
        object.__setattr__(obj, _CANONICAL_ATTR, cached)
    return cached


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a nested tuple of primitives with a stable ``repr``.

    The result contains only ``str``, ``int``, ``bool``, ``None`` and tuples,
    so ``repr(canonical(obj))`` is identical across processes.  Domain types
    get shape-aware treatment; unknown types raise ``TypeError`` rather than
    silently fingerprinting an identity.
    """
    Platform, TaskChain, TaskGraph, MathTask = _domain_classes()

    if obj is None or isinstance(obj, (str, int, bool)):
        return obj
    if isinstance(obj, float):
        return _canonical_float(obj)
    if isinstance(obj, np.floating):
        return _canonical_float(float(obj))
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, Platform):
        # Device insertion order is semantic (it defines the alias order of
        # every table built from the platform); link-key order is not (links
        # are looked up by canonical pair), so links are sorted.
        devices = tuple((alias, canonical(spec)) for alias, spec in obj.devices.items())
        links = tuple(
            sorted((pair, canonical(spec)) for pair, spec in obj.links.items())
        )
        return ("Platform", obj.name, obj.host, devices, links, canonical(obj.faults))
    if isinstance(obj, TaskChain):
        tasks = tuple(canonical(task) for task in obj.tasks)
        return ("TaskChain", obj.name, tasks)
    if isinstance(obj, TaskGraph):
        # Tasks are already in the canonical topological order -- a pure
        # function of (names, edges) -- so node insertion order cannot leak.
        tasks = tuple(canonical(task) for task in obj.tasks)
        return ("TaskGraph", obj.name, tasks, tuple(obj.edges))
    if isinstance(obj, MathTask):
        return ("MathTask", type(obj).__name__, obj.name, canonical(obj.cost()))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        if isinstance(obj, _condition_axis_class()):
            return _canonical_condition_axis(obj)
        if type(obj) is _scenario_class():
            return _canonical_scenario(obj)
        return _canonical_dataclass(obj)
    if isinstance(obj, Mapping):
        return ("mapping", tuple(sorted((canonical(k), canonical(v)) for k, v in obj.items())))
    if isinstance(obj, (frozenset, set)):
        return ("set", tuple(sorted(canonical(item) for item in obj)))
    if isinstance(obj, (tuple, list)):
        return tuple(canonical(item) for item in obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for fingerprinting: {obj!r}")


def fingerprint(obj: Any) -> str:
    """Stable SHA-256 hex digest of ``obj``'s canonical content."""
    payload = repr(canonical(obj)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


_FINGERPRINT_ATTR = "_repro_content_fingerprint"

#: ``fingerprint(None)``, precomputed -- every table key digests three
#: ``None`` parts (faults/retry/timeout) on the delta-rebuild hot path.
_NONE_FINGERPRINT: str | None = None


def cached_fingerprint(obj: Any) -> str:
    """:func:`fingerprint`, memoized on the object for hot paths.

    Workloads and platforms are immutable by convention, so the digest is
    stashed on the instance (``object.__setattr__`` works on frozen
    dataclasses); objects refusing attributes fall back to recomputing.
    """
    if obj is None:
        global _NONE_FINGERPRINT
        if _NONE_FINGERPRINT is None:
            _NONE_FINGERPRINT = fingerprint(None)
        return _NONE_FINGERPRINT
    cached = getattr(obj, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    digest = fingerprint(obj)
    try:
        object.__setattr__(obj, _FINGERPRINT_ATTR, digest)
    except (AttributeError, TypeError):
        pass
    return digest


_GRID_FINGERPRINT_ATTR = "_repro_grid_fingerprint"
_GRID_FINGERPRINT_PARTS_ATTR = "_repro_grid_fingerprint_parts"


# Late imports memoized once: cache is a leaf module, but its hot keying paths
# should not re-run the import machinery on every call.
@lru_cache(maxsize=None)
def _scenario_grid_class() -> type:
    from .scenarios.grid import ScenarioGrid

    return ScenarioGrid


@lru_cache(maxsize=None)
def _platform_class() -> type:
    from .devices.platform import Platform

    return Platform


def _grid_fingerprint_parts(scenarios: Any) -> tuple:
    """Ordered per-scenario digests of a grid, memoized on the grid."""
    cached = getattr(scenarios, _GRID_FINGERPRINT_PARTS_ATTR, None)
    if cached is not None:
        return cached
    parts = tuple(cached_fingerprint(s) for s in scenarios.scenarios)
    try:
        object.__setattr__(scenarios, _GRID_FINGERPRINT_PARTS_ATTR, parts)
    except (AttributeError, TypeError):
        pass
    return parts


def _grid_digest(parts: tuple) -> str:
    # Parts are fixed-width hex digests, so a NUL join is injective and much
    # cheaper than repr-ing a tuple of s strings.
    payload = "\x00".join(("ScenarioGrid",) + parts).encode("ascii")
    return hashlib.sha256(payload).hexdigest()


def _scenarios_fingerprint(scenarios: Any) -> str:
    """Fingerprint of a table key's ``scenarios`` part.

    A :class:`~repro.scenarios.grid.ScenarioGrid` is digested as the ordered
    combination of its scenarios' :func:`cached_fingerprint` values (memoized
    on the grid), so re-keying a grid that swaps one scenario -- the delta
    rebuild hot path -- re-hashes ``s`` digests instead of re-canonicalizing
    every axis of every scenario.
    """
    if scenarios is None:
        return cached_fingerprint(None)
    if not isinstance(scenarios, _scenario_grid_class()):
        return cached_fingerprint(scenarios)
    cached = getattr(scenarios, _GRID_FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    digest = _grid_digest(_grid_fingerprint_parts(scenarios))
    try:
        object.__setattr__(scenarios, _GRID_FINGERPRINT_ATTR, digest)
    except (AttributeError, TypeError):
        pass
    return digest


def seed_updated_grid_fingerprint(base: Any, updated: Any, changed: "Any") -> None:
    """Pre-seed ``updated``'s grid fingerprint from ``base``'s memoized parts.

    Delta rebuilds construct a fresh grid differing from ``base`` in a handful
    of rows; re-digesting only those rows (``changed`` is their index set)
    keeps re-keying O(changes) instead of O(scenarios).  The seeded digest is
    exactly what :func:`_scenarios_fingerprint` would compute from scratch.
    """
    parts = list(_grid_fingerprint_parts(base))
    for i in changed:
        parts[i] = cached_fingerprint(updated.scenarios[i])
    parts = tuple(parts)
    try:
        object.__setattr__(updated, _GRID_FINGERPRINT_PARTS_ATTR, parts)
        object.__setattr__(updated, _GRID_FINGERPRINT_ATTR, _grid_digest(parts))
    except (AttributeError, TypeError):
        pass


def table_key(
    workload: Any,
    platform: Any,
    *,
    devices: Any = None,
    scenarios: Any = None,
    faults: Any = None,
    retry: Any = None,
    timeout: Any = None,
) -> str:
    """Composite fingerprint keying one cost-table build configuration.

    ``platform`` may be a single platform or a sequence (explicit grid
    platforms); either way the key is content-addressed, so rebuilding an
    equal configuration from scratch hits the cache.
    """
    return table_key_from_fingerprint(
        cached_fingerprint(workload),
        platform,
        devices=devices,
        scenarios=scenarios,
        faults=faults,
        retry=retry,
        timeout=timeout,
    )


def table_key_from_fingerprint(
    workload_fingerprint: str,
    platform: Any,
    *,
    devices: Any = None,
    scenarios: Any = None,
    faults: Any = None,
    retry: Any = None,
    timeout: Any = None,
) -> str:
    """:func:`table_key` with the workload already digested.

    Delta rebuilds carry the workload's fingerprint in their build context
    rather than the workload object itself; this entry point lets them re-key
    updated tables under the same scheme as :func:`table_key`.
    """
    if platform is None or isinstance(platform, _platform_class()):
        platform_part = ("platform", cached_fingerprint(platform))
    else:
        platform_part = ("platforms", tuple(cached_fingerprint(p) for p in platform))
    parts = (
        "table",
        workload_fingerprint,
        platform_part,
        ("devices", canonical(tuple(devices) if devices is not None else None)),
        ("scenarios", _scenarios_fingerprint(scenarios)),
        ("faults", cached_fingerprint(faults)),
        ("retry", cached_fingerprint(retry)),
        ("timeout", cached_fingerprint(timeout)),
    )
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# size accounting
# ---------------------------------------------------------------------------


def estimate_nbytes(obj: Any, _depth: int = 0) -> int:
    """Rough payload size: the ndarray bytes reachable through dataclass
    fields, tuples and mappings, plus a small per-object overhead."""
    if _depth > 6:
        return 64
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 64
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return 64 + sum(
            estimate_nbytes(getattr(obj, field.name), _depth + 1)
            for field in dataclasses.fields(obj)
        )
    if isinstance(obj, Mapping):
        return 64 + sum(estimate_nbytes(value, _depth + 1) for value in obj.values())
    if isinstance(obj, (tuple, list, set, frozenset)):
        return 64 + sum(estimate_nbytes(item, _depth + 1) for item in obj)
    if isinstance(obj, str):
        return 49 + len(obj)
    return 32


# ---------------------------------------------------------------------------
# the bounded LRU cache
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of one :class:`TableCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    nbytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TableCache:
    """Bounded LRU cache keyed by content fingerprints.

    Entries are evicted least-recently-used first whenever the entry count
    exceeds ``max_entries`` or the estimated payload size exceeds
    ``max_bytes`` -- except that the most recently inserted entry is never
    evicted by its own insertion, so a single oversized table still caches.
    All traffic is counted (``hits`` / ``misses`` / ``evictions``).
    """

    def __init__(self, max_entries: int = 256, max_bytes: int = 256 * 2**20) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[Hashable, tuple[Any, int]]" = OrderedDict()
        self._nbytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return default
        self._entries.move_to_end(key)
        self._hits += 1
        return entry[0]

    def put(self, key: Hashable, value: Any, nbytes: int | None = None) -> None:
        if key in self._entries:
            _, old_size = self._entries.pop(key)
            self._nbytes -= old_size
        size = estimate_nbytes(value) if nbytes is None else int(nbytes)
        self._entries[key] = (value, size)
        self._nbytes += size
        self._evict()

    def get_or_build(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """Return the cached value, building and inserting it on a miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]
        self._misses += 1
        value = build()
        size = estimate_nbytes(value)
        self._entries[key] = (value, size)
        self._nbytes += size
        self._evict()
        return value

    def _evict(self) -> None:
        while len(self._entries) > 1 and (
            len(self._entries) > self.max_entries or self._nbytes > self.max_bytes
        ):
            _, (_, size) = self._entries.popitem(last=False)
            self._nbytes -= size
            self._evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self._nbytes = 0
        return dropped

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            entries=len(self._entries),
            nbytes=self._nbytes,
        )
