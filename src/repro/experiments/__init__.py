"""Experiment harness: one runner per paper table/figure plus a registry.

Experiment ids (see DESIGN.md, per-experiment index):

* ``figure1``          -- Fig. 1a splits and Fig. 1b timing distributions (N=500).
* ``figure2``          -- the bubble-sort walk-through of Fig. 2 (exact replay).
* ``section3_scores``  -- the N=30 relative-score illustration of Section III.
* ``table1``           -- the clustering of the 8 RLS placements (Table I).
* ``decision_model``   -- the cost/speed trade-off numbers of Section IV.
* ``energy_switching`` -- the DDD <-> DAA duty-cycle scenario of Section IV.
* ``robustness``       -- winner/performance-class drift along a wifi -> lte sweep.
* ``forkjoin``         -- DAG-aware vs chain-linearized placement of a fork-join code.
* ``planner_scale``    -- enumerator -> exact-DP crossover and the 4**200 scale sweep.
* ``faulttolerance``   -- fault-blind vs fault-aware placement along a failure-rate sweep.
* ``fleet``            -- fleet-optimal vs per-segment placement over a sampled user population.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from . import (
    decision_model,
    energy_switching,
    faulttolerance,
    figure1,
    figure2,
    fleet,
    forkjoin,
    planner_scale,
    robustness,
    section3_scores,
    table1,
)
from .base import default_analyzer
from .decision_model import DecisionModelConfig, DecisionModelResult
from .energy_switching import EnergySwitchingConfig, EnergySwitchingResult
from .faulttolerance import FaultToleranceConfig, FaultToleranceResult
from .figure1 import Figure1Config, Figure1Result
from .figure2 import Figure2Config, Figure2Result, paper_oracle
from .fleet import FleetConfig, FleetResult
from .forkjoin import ForkJoinConfig, ForkJoinResult
from .planner_scale import PlannerScaleConfig, PlannerScaleResult
from .robustness import RobustnessConfig, RobustnessResult
from .section3_scores import Section3Config, Section3Result
from .table1 import PAPER_TABLE1, Table1Config, Table1Result

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "default_analyzer",
    "Figure1Config",
    "Figure1Result",
    "Figure2Config",
    "Figure2Result",
    "paper_oracle",
    "Section3Config",
    "Section3Result",
    "Table1Config",
    "Table1Result",
    "PAPER_TABLE1",
    "DecisionModelConfig",
    "DecisionModelResult",
    "EnergySwitchingConfig",
    "EnergySwitchingResult",
    "RobustnessConfig",
    "RobustnessResult",
    "ForkJoinConfig",
    "ForkJoinResult",
    "PlannerScaleConfig",
    "PlannerScaleResult",
    "FaultToleranceConfig",
    "FaultToleranceResult",
    "FleetConfig",
    "FleetResult",
]

#: Registry: experiment id -> runner callable (each accepts an optional config object).
EXPERIMENTS: Mapping[str, Callable[..., Any]] = {
    "figure1": figure1.run,
    "figure2": figure2.run,
    "section3_scores": section3_scores.run,
    "table1": table1.run,
    "decision_model": decision_model.run,
    "energy_switching": energy_switching.run,
    "robustness": robustness.run,
    "forkjoin": forkjoin.run,
    "planner_scale": planner_scale.run,
    "faulttolerance": faulttolerance.run,
    "fleet": fleet.run,
}


def run_experiment(name: str, config: Any | None = None) -> Any:
    """Run a registered experiment by id and return its result object."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError as exc:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}") from exc
    return runner(config) if config is not None else runner()
