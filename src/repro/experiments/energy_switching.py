"""Experiment ``energy_switching``: the duty-cycle scenario of Section IV.

"When energy consumption of a particular device reaches a certain threshold,
one might be interested in switching to an algorithm that performs fewer
floating point operations (FLOPs) on that device, and then switches back to
the high-performance algorithm after a while."

Using the Table I workload, this experiment runs the
:class:`~repro.selection.switching.EnergyAwareSwitcher` with ``DDD`` as the
preferred (all-on-device) algorithm and ``DAA`` as the cool-down algorithm
(it offloads most of the FLOPs to the accelerator), and compares the switching
policy with statically running either algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..devices import SimulatedExecutor, cpu_gpu_platform
from ..measurement.noise import default_system_noise
from ..offload import AlgorithmProfile, enumerate_algorithms, profile_algorithms
from ..reporting import format_table
from ..selection import EnergyAwareSwitcher, FlopsBudgetSelector, SwitchingPolicy, SwitchingTrace
from ..tasks import table1_chain
from .table1 import Table1Config, Table1Result
from .table1 import run as run_table1

__all__ = ["EnergySwitchingConfig", "EnergySwitchingResult", "run"]


@dataclass(frozen=True)
class EnergySwitchingConfig:
    """Parameters of the energy-aware switching experiment."""

    loop_size: int = 10
    #: Number of successive invocations of the scientific code to simulate.
    n_invocations: int = 200
    #: Edge-device energy threshold (J) that triggers the switch to the cool-down algorithm.
    threshold_j: float = 20.0
    #: Passive energy drained per invocation while cooling down (J).
    dissipation_j: float = 2.0
    #: Preferred / cool-down algorithms (the paper's choice: DDD and DAA).
    preferred: str = "DDD"
    cooldown: str = "DAA"
    seed: int = 0


@dataclass(frozen=True)
class EnergySwitchingResult:
    config: EnergySwitchingConfig
    trace: SwitchingTrace
    comparison: Mapping[str, Mapping[str, float]]
    profiles: Mapping[str, AlgorithmProfile]
    #: Algorithm chosen by a FLOPs-budget selector from the fastest clusters (sanity check
    #: that DAA-like algorithms are what the budgeted selection recommends).
    budget_choice: str
    table1: Table1Result

    def report(self) -> str:
        rows = [
            (
                strategy,
                f"{values['time_s']:.3f}",
                f"{values['device_energy_j']:.2f}",
            )
            for strategy, values in self.comparison.items()
        ]
        parts = [
            "Energy-aware switching (Section IV): run DDD until the edge energy budget is hit,",
            f"switch to {self.config.cooldown} while cooling down, switch back afterwards.",
            "",
            f"invocations: {self.trace.n_invocations}, switches: {self.trace.n_switches}, "
            f"fraction on {self.config.preferred}: {self.trace.usage_fraction(self.config.preferred):.2f}",
            f"peak accumulated edge energy: {self.trace.peak_accumulated_j:.2f} J "
            f"(threshold {self.config.threshold_j:.2f} J)",
            "",
            format_table(("strategy", "total time [s]", "edge-device energy [J]"), rows),
            "",
            f"FLOPs-budget selector recommendation for a constrained edge device: {self.budget_choice}",
        ]
        return "\n".join(parts)


def run(config: EnergySwitchingConfig | None = None) -> EnergySwitchingResult:
    """Run the duty-cycle switching simulation on the Table I workload."""
    cfg = config or EnergySwitchingConfig()
    table1 = run_table1(
        Table1Config(loop_size=cfg.loop_size, seed=cfg.seed, n_measurements=30, repetitions=60)
    )

    platform = cpu_gpu_platform()
    executor = SimulatedExecutor(platform, noise=default_system_noise(0.0), seed=cfg.seed)
    chain = table1_chain(loop_size=cfg.loop_size)
    algorithms = {a.label: a for a in enumerate_algorithms(chain, platform)}
    profiles = profile_algorithms(algorithms.values(), executor)

    policy = SwitchingPolicy(
        preferred=cfg.preferred,
        cooldown=cfg.cooldown,
        device=platform.host,
        threshold_j=cfg.threshold_j,
        dissipation_j_per_invocation=cfg.dissipation_j,
    )
    switcher = EnergyAwareSwitcher(policy=policy, profiles=profiles)
    trace = switcher.simulate(cfg.n_invocations)
    comparison = switcher.compare_with_static(cfg.n_invocations)

    # Which algorithm would a FLOPs budget on the edge device recommend?  The budget is set
    # between DDD's and DAA's edge FLOPs so the selector has to ship work to the accelerator.
    ddd_flops = algorithms["DDD"].flops_on(platform.host)
    selector = FlopsBudgetSelector(device=platform.host, budget_flops=0.25 * ddd_flops)
    budget_choice = str(selector.select(table1.analysis.final, algorithms).label)

    return EnergySwitchingResult(
        config=cfg,
        trace=trace,
        comparison=comparison,
        profiles=profiles,
        budget_choice=budget_choice,
        table1=table1,
    )
