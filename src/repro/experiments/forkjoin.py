"""Experiment ``forkjoin``: DAG-aware placement of a branchy scientific code.

The chain-only pipeline serializes every workload, so its placement choice
optimises the wrong objective for codes that branch.  This experiment runs a
fork-join code (``prep -> {b1..bN} -> join``, heavy independent branches) on
the 4-device edge cluster and quantifies what DAG awareness buys:

* the **whole placement space** is evaluated twice -- once under the DAG model
  (critical path, overlapping branches, per-edge joins) and once under the
  chain-linearized model the old pipeline would have used;
* the chain-planned winner is then *re-evaluated under the DAG model*: the gap
  to the DAG-planned winner is the **planning gain** -- the speedup obtained
  purely by modeling the structure, no hardware changed;
* the top DAG placements are measured under system noise and clustered with
  the paper's relative-performance machinery, confirming the DAG winner sits
  in the fastest performance class (the ranking survives noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.analyzer import AnalysisResult
from ..devices import SimulatedExecutor, edge_cluster_platform
from ..devices.batch import BatchExecutionResult
from ..measurement.noise import default_system_noise
from ..reporting import format_table
from ..tasks import TaskGraph, fork_join_graph
from .base import default_analyzer

__all__ = ["ForkJoinConfig", "ForkJoinResult", "run"]


@dataclass(frozen=True)
class ForkJoinConfig:
    """Parameters of the fork-join experiment."""

    #: Number of parallel refinement branches between prep and join.
    branches: int = 3
    #: Matrix size of every branch solve (the heavy, offloadable stage).
    branch_size: int = 260
    #: Loop length of every task.
    iterations: int = 12
    #: This many of the best DAG placements (by time) are measured and clustered.
    candidates: int = 6
    n_measurements: int = 30
    repetitions: int = 60
    seed: int = 0
    noise_level: float = 1.0


@dataclass(frozen=True)
class ForkJoinResult:
    config: ForkJoinConfig
    graph: TaskGraph
    #: Whole-space evaluation under the DAG model.
    graph_batch: BatchExecutionResult
    #: Whole-space evaluation under the chain-linearized model.
    chain_batch: BatchExecutionResult
    dag_winner: str
    dag_winner_time_s: float
    chain_winner: str
    #: The chain-planned placement re-evaluated under the DAG model.
    chain_winner_dag_time_s: float
    #: What the chain model *predicted* for its winner (no overlap).
    chain_winner_serial_time_s: float
    #: Labels measured under noise (best DAG placements, batch order).
    candidates: tuple[str, ...]
    analysis: AnalysisResult
    fastest_class: tuple[str, ...]

    @property
    def planning_gain(self) -> float:
        """Speedup of planning with the DAG model instead of the chain model
        (both placements evaluated under the DAG model)."""
        return self.chain_winner_dag_time_s / self.dag_winner_time_s

    @property
    def overlap_speedup(self) -> float:
        """Speedup of the DAG winner over the chain model's serial prediction."""
        return self.chain_winner_serial_time_s / self.dag_winner_time_s

    def report(self) -> str:
        rows = [
            ("DAG-aware winner", self.dag_winner, f"{self.dag_winner_time_s * 1e3:.1f}"),
            (
                "chain-planned winner (DAG model)",
                self.chain_winner,
                f"{self.chain_winner_dag_time_s * 1e3:.1f}",
            ),
            (
                "chain-planned winner (serial model)",
                self.chain_winner,
                f"{self.chain_winner_serial_time_s * 1e3:.1f}",
            ),
        ]
        parts = [
            f"Fork-join experiment: {self.config.branches} branches, "
            f"{len(self.graph)} tasks, {len(self.graph_batch)} placements "
            f"(tasks: {' '.join(self.graph.task_names)})",
            format_table(("schedule", "placement", "time [ms]"), rows),
            "",
            f"planning gain (DAG-aware vs chain-linearized placement): "
            f"{self.planning_gain:.2f}x",
            f"overlap speedup vs serial prediction: {self.overlap_speedup:.2f}x",
            f"fastest performance class under noise: {' '.join(self.fastest_class)}",
        ]
        return "\n".join(parts)


def run(config: ForkJoinConfig | None = None) -> ForkJoinResult:
    """Evaluate, compare and noise-cluster the fork-join placement space."""
    cfg = config or ForkJoinConfig()
    if cfg.candidates < 2:
        raise ValueError("need at least 2 candidates to cluster")
    platform = edge_cluster_platform()
    graph = fork_join_graph(
        branches=cfg.branches, branch_size=cfg.branch_size, iterations=cfg.iterations
    )
    executor = SimulatedExecutor(
        platform, noise=default_system_noise(cfg.noise_level), seed=cfg.seed
    )
    graph_batch = executor.execute_batch(graph)
    chain_batch = executor.execute_batch(graph.linearized_chain())

    dag_best = graph_batch.argbest("time")
    chain_best = chain_batch.argbest("time")

    # Measure + cluster the best DAG placements (always including the
    # chain-planned winner, so the clustering compares the two plans).
    top = graph_batch.top(cfg.candidates, metric="time")
    candidate_rows = np.unique(np.append(top, chain_best))
    candidates = tuple(graph_batch.label(int(row)) for row in candidate_rows)
    measured = executor.execute_batch(graph, graph_batch.placements[candidate_rows])
    measurements = executor.measure_batch(measured, repetitions=cfg.n_measurements)
    analyzer = default_analyzer(
        seed=cfg.seed,
        repetitions=cfg.repetitions,
        n_measurements=cfg.n_measurements,
        stochastic=False,
    )
    analysis = analyzer.analyze(measurements)

    return ForkJoinResult(
        config=cfg,
        graph=graph,
        graph_batch=graph_batch,
        chain_batch=chain_batch,
        dag_winner=graph_batch.label(dag_best),
        dag_winner_time_s=float(graph_batch.total_time_s[dag_best]),
        chain_winner=chain_batch.label(chain_best),
        chain_winner_dag_time_s=float(graph_batch.total_time_s[chain_best]),
        chain_winner_serial_time_s=float(chain_batch.total_time_s[chain_best]),
        candidates=candidates,
        analysis=analysis,
        fastest_class=tuple(str(label) for label in analysis.best_algorithms()),
    )
