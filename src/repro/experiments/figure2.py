"""Experiment ``figure2``: the bubble-sort walk-through of Section III / Figure 2.

The paper fixes the pairwise outcomes of the four Figure-1 algorithms
(``AD`` beats everything, ``AA`` beats ``DD`` and ``DA``, ``DD ~ DA``) and
walks through the three-way bubble sort by hand, starting from the sequence
``DD, AA, DA, AD``.  This experiment replays that trace programmatically and
checks the published final sequence ``<(AD,1), (AA,2), (DD,3), (DA,3)>``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sorting import SortResult, three_way_bubble_sort
from ..core.types import Comparison, PairwiseOracle
from ..reporting import sort_trace_table

__all__ = ["Figure2Config", "Figure2Result", "paper_oracle", "run", "PAPER_FINAL_SEQUENCE"]

#: The final sequence set published at the end of Section III's walk-through.
PAPER_FINAL_SEQUENCE: tuple[tuple[str, int], ...] = (("AD", 1), ("AA", 2), ("DD", 3), ("DA", 3))


def paper_oracle() -> PairwiseOracle:
    """The pairwise outcomes implied by Figure 1b and used in the Figure 2 walk-through."""
    return PairwiseOracle(
        {
            ("AD", "DD"): Comparison.BETTER,
            ("AD", "DA"): Comparison.BETTER,
            ("AD", "AA"): Comparison.BETTER,
            ("AA", "DD"): Comparison.BETTER,
            ("AA", "DA"): Comparison.BETTER,
            ("DD", "DA"): Comparison.EQUIVALENT,
        }
    )


@dataclass(frozen=True)
class Figure2Config:
    """Parameters of the Figure 2 trace replay."""

    #: Initial (unsorted) sequence, as in the paper's illustration.
    initial_order: tuple[str, ...] = ("DD", "AA", "DA", "AD")


@dataclass(frozen=True)
class Figure2Result:
    config: Figure2Config
    sort: SortResult

    @property
    def matches_paper(self) -> bool:
        """True when the final sequence equals the one published in the paper."""
        return tuple(self.sort.pairs()) == PAPER_FINAL_SEQUENCE

    def report(self) -> str:
        lines = [
            "Figure 2 -- bubble sort with three-way comparison, step by step:",
            sort_trace_table(self.sort),
            "",
            "Final sequence set: "
            + ", ".join(f"(alg{label}, {rank})" for label, rank in self.sort.pairs()),
            f"Matches the paper's published sequence: {self.matches_paper}",
        ]
        return "\n".join(lines)


def run(config: Figure2Config | None = None) -> Figure2Result:
    """Replay the Figure 2 walk-through with the paper's comparison oracle."""
    cfg = config or Figure2Config()
    result = three_way_bubble_sort(list(cfg.initial_order), paper_oracle(), record_trace=True)
    return Figure2Result(config=cfg, sort=result)
