"""Experiment ``decision_model``: the cost/speed trade-off numbers of Section IV.

The paper argues that whether procuring/operating an accelerator is worth it
depends on the margin of speed-up: for loop size n = 10 the mean execution
time of ``algDDA`` is only ~2 ms better than ``algDDD`` (speed-up ~1.05), and
the speed-up grows with n.  A decision model can then trade the operating cost
of the accelerator against that speed-up.

This experiment sweeps the loop size n, reports the DDA-vs-DDD gap and
speed-up per n, and evaluates the :class:`~repro.selection.decision.DecisionModel`
under a range of operating-cost weights, showing the switch-over from
"offload L3" to "stay on the device" as cost becomes more important.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.analyzer import AnalysisResult
from ..devices import BatchExecutionResult, SimulatedExecutor, cpu_gpu_platform
from ..measurement.dataset import MeasurementSet
from ..measurement.noise import default_system_noise
from ..offload import AlgorithmProfile, enumerate_algorithms, profiles_from_batch
from ..reporting import format_table
from ..selection import DecisionModel
from ..tasks import table1_chain
from .base import default_analyzer

__all__ = ["DecisionModelConfig", "SweepPoint", "DecisionModelResult", "run"]


@dataclass(frozen=True)
class DecisionModelConfig:
    """Parameters of the decision-model experiment."""

    #: Loop sizes n to sweep (the paper discusses n = 10 and "when n becomes larger").
    loop_sizes: Sequence[int] = (5, 10, 20, 40)
    #: Operating-cost weights (seconds per cost unit) for the decision model.
    cost_weights: Sequence[float] = (0.0, 100.0, 10_000.0)
    n_measurements: int = 30
    repetitions: int = 60
    seed: int = 0
    noise_level: float = 1.0
    #: Analyze the loop-size campaign across worker processes
    #: (:meth:`~repro.core.analyzer.RelativePerformanceAnalyzer.analyze_many`).
    parallel: bool = False
    max_workers: int | None = None


@dataclass(frozen=True)
class SweepPoint:
    """DDA-vs-DDD comparison for one loop size n."""

    loop_size: int
    mean_ddd_s: float
    mean_dda_s: float
    speedup: float
    gap_s: float
    measurements: MeasurementSet
    analysis: AnalysisResult
    profiles: Mapping[str, AlgorithmProfile]


@dataclass(frozen=True)
class DecisionModelResult:
    config: DecisionModelConfig
    sweep: tuple[SweepPoint, ...]
    #: label selected by the decision model per (loop size, cost weight).
    decisions: Mapping[tuple[int, float], str]

    def speedups(self) -> dict[int, float]:
        return {point.loop_size: point.speedup for point in self.sweep}

    def gaps_s(self) -> dict[int, float]:
        return {point.loop_size: point.gap_s for point in self.sweep}

    def report(self) -> str:
        rows = [
            (
                point.loop_size,
                f"{point.mean_ddd_s * 1e3:.2f}",
                f"{point.mean_dda_s * 1e3:.2f}",
                f"{point.gap_s * 1e3:.2f}",
                f"{point.speedup:.3f}",
            )
            for point in self.sweep
        ]
        parts = [
            "Decision-model experiment (Section IV): speed-up of algDDA over algDDD vs loop size n",
            format_table(
                ("loop size n", "mean DDD [ms]", "mean DDA [ms]", "gap [ms]", "speed-up"), rows
            ),
            "",
            "Decision-model selections (time + cost_weight * operating cost):",
        ]
        decision_rows = [
            (loop_size, f"{weight:g}", label)
            for (loop_size, weight), label in sorted(self.decisions.items(), key=lambda kv: (kv[0][0], kv[0][1]))
        ]
        parts.append(format_table(("loop size n", "cost weight", "selected algorithm"), decision_rows))
        return "\n".join(parts)


def run(config: DecisionModelConfig | None = None) -> DecisionModelResult:
    """Sweep the loop size and evaluate the cost/speed decision model.

    The measurement phase walks the loop sizes, but the clustering of the
    whole sweep runs as *one* batched campaign through
    :meth:`~repro.core.analyzer.RelativePerformanceAnalyzer.analyze_many`
    (optionally across processes with ``config.parallel``).  Each campaign
    entry is analyzed by an independent analyzer copy, which matches the
    previous one-fresh-analyzer-per-loop-size behaviour exactly.
    """
    cfg = config or DecisionModelConfig()
    platform = cpu_gpu_platform()

    campaign: dict[int, MeasurementSet] = {}
    profiles_by_n: dict[int, Mapping[str, AlgorithmProfile]] = {}
    spaces_by_n: dict[int, BatchExecutionResult] = {}
    for loop_size in cfg.loop_sizes:
        if loop_size in campaign:
            continue  # duplicate entries share one measurement + analysis (deterministic)
        executor = SimulatedExecutor(
            platform, noise=default_system_noise(cfg.noise_level), seed=cfg.seed + loop_size
        )
        chain = table1_chain(loop_size=loop_size)
        algorithms = enumerate_algorithms(chain, platform)
        # One batch execution per loop size serves the measurements, the
        # reporting profiles *and* the decisions (bit-for-bit identical to the
        # per-placement loop).
        space = executor.execute_batch(chain, [a.placement.devices for a in algorithms])
        campaign[loop_size] = executor.measure_batch(space, repetitions=cfg.n_measurements)
        profiles_by_n[loop_size] = profiles_from_batch(algorithms, space)
        spaces_by_n[loop_size] = space

    analyzer = default_analyzer(
        seed=cfg.seed, repetitions=cfg.repetitions, n_measurements=cfg.n_measurements
    )
    analyses = analyzer.analyze_many(
        campaign, parallel=cfg.parallel, max_workers=cfg.max_workers
    )

    sweep: list[SweepPoint] = []
    decisions: dict[tuple[int, float], str] = {}
    # Iterate the configured entries (not the deduplicated campaign keys) so a
    # repeated loop size still yields one SweepPoint per entry, as before.
    for loop_size in cfg.loop_sizes:
        measurements = campaign[loop_size]
        analysis = analyses[loop_size]
        profiles = profiles_by_n[loop_size]
        sweep.append(
            SweepPoint(
                loop_size=loop_size,
                mean_ddd_s=measurements.mean("DDD"),
                mean_dda_s=measurements.mean("DDA"),
                speedup=measurements.speedup("DDD", "DDA"),
                gap_s=measurements.mean("DDD") - measurements.mean("DDA"),
                measurements=measurements,
                analysis=analysis,
                profiles=profiles,
            )
        )
        for weight in cfg.cost_weights:
            model = DecisionModel(cost_weight=weight)
            # Decide straight from the batch columns (the streaming-search
            # selection path); identical to model.decide(analysis.final,
            # profiles) since the columns match the profile fields bitwise.
            decision = model.decide_from_batch(analysis.final, spaces_by_n[loop_size])
            decisions[(loop_size, float(weight))] = str(decision.label)

    return DecisionModelResult(config=cfg, sweep=tuple(sweep), decisions=decisions)
