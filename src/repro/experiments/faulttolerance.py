"""Experiment ``faulttolerance``: fault-blind vs fault-aware placement.

A placement chosen by the classic noise-free cost model is *fault-blind*: it
happily concentrates work on the fastest accelerator even when that device
crashes often enough that retries (each re-paying compute and transfer) eat
the speedup.  This experiment sweeps the failure rate of the remote devices
(edge server + cloud GPU) of the 4-device edge cluster and, per point:

* evaluates the **whole placement space** under the scenario's fault profile
  with the vectorized expected-cost engine (retries with backoff),
* compares the *fault-blind* optimum (picked once at failure rate 0) with the
  *fault-aware* optimum of that point -- expected times, success
  probabilities, and the overhead the blind pick pays,
* reports the crossover: the first failure rate at which the fault-aware
  engine abandons the fault-blind placement.

The sweep ends with a :func:`~repro.faults.plan_with_fallback` plan at the
highest failure rate -- the primary placement plus one verified backup per
non-host device, the operational answer to "what do we run when the edge
server is gone?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..devices import SimulatedExecutor, edge_cluster_platform
from ..faults import (
    FallbackPlan,
    RetryPolicy,
    build_fault_tables,
    execute_fault_placements,
    plan_with_fallback,
)
from ..offload.space import placement_matrix
from ..reporting import format_table
from ..scenarios import DeviceFailureRate, Scenario, ScenarioGrid, apply_conditions
from ..tasks import RegularizedLeastSquaresTask, TaskChain

__all__ = ["FaultToleranceConfig", "FaultPoint", "FaultToleranceResult", "run", "fault_chain"]


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Parameters of the fault-tolerance experiment."""

    #: Per-attempt failure probabilities swept on the faulty devices.
    failure_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.35, 0.5)
    #: Devices that fail (the remote edge server and cloud GPU of the cluster).
    faulty_devices: Sequence[str] = ("E", "A")
    #: Matrix sizes of the chained loop tasks.
    task_sizes: Sequence[int] = (60, 100, 160, 260, 420)
    #: Loop length of every task (compute-heavy loops make offloading pay).
    iterations: int = 20
    #: Retry policy every evaluation uses (attempts incl. the first).
    max_attempts: int = 3
    backoff_base_s: float = 0.001
    seed: int = 0


def fault_chain(config: FaultToleranceConfig | None = None) -> TaskChain:
    """The experiment's loop chain (device-generated data, mixed task sizes)."""
    cfg = config or FaultToleranceConfig()
    tasks = [
        RegularizedLeastSquaresTask(
            size=size, iterations=cfg.iterations, name=f"L{i + 1}", generate_on_host=False
        )
        for i, size in enumerate(cfg.task_sizes)
    ]
    return TaskChain(tasks, name="fault-tolerance")


@dataclass(frozen=True)
class FaultPoint:
    """Everything observed at one failure rate of the sweep."""

    scenario: str
    #: Per-attempt failure probability of the faulty devices.
    rate: float
    #: Fault-aware optimum of this point (min expected time).
    aware: str
    aware_time_s: float
    aware_success: float
    #: Expected time the fault-blind placement (rate-0 optimum) pays here.
    blind: str
    blind_time_s: float
    blind_success: float

    @property
    def blind_overhead(self) -> float:
        """Relative extra expected time of sticking with the blind pick."""
        if self.aware_time_s == 0.0:
            return 0.0
        return self.blind_time_s / self.aware_time_s - 1.0


@dataclass(frozen=True)
class FaultToleranceResult:
    config: FaultToleranceConfig
    sweep: tuple[FaultPoint, ...]
    #: The fault-blind placement (optimal at failure rate 0).
    blind_label: str
    #: First swept rate at which the fault-aware pick differs (None: never).
    crossover_rate: float | None
    #: Primary + per-device backup plans at the highest swept failure rate.
    fallback: FallbackPlan

    def picks(self) -> dict[str, str]:
        return {point.scenario: point.aware for point in self.sweep}

    def pick_drift(self) -> int:
        """Number of distinct fault-aware picks along the sweep."""
        return len(dict.fromkeys(point.aware for point in self.sweep))

    def report(self) -> str:
        rows = [
            (
                f"{point.rate:g}",
                point.aware,
                f"{point.aware_time_s * 1e3:.2f}",
                f"{point.aware_success:.4f}",
                f"{point.blind_time_s * 1e3:.2f}",
                f"{point.blind_success:.4f}",
                f"{point.blind_overhead * 100:+.1f}%",
            )
            for point in self.sweep
        ]
        crossover = (
            f"fault-aware pick abandons {self.blind_label} at rate "
            f"{self.crossover_rate:g}"
            if self.crossover_rate is not None
            else f"fault-blind pick {self.blind_label} survives the whole sweep"
        )
        parts = [
            "Fault-tolerance experiment: device-failure sweep on "
            f"{list(self.config.faulty_devices)} "
            f"({len(self.sweep)} points, blind pick {self.blind_label})",
            format_table(
                (
                    "failure rate",
                    "aware pick",
                    "aware E[time] [ms]",
                    "aware P(succ)",
                    "blind E[time] [ms]",
                    "blind P(succ)",
                    "blind overhead",
                ),
                rows,
            ),
            "",
            f"pick drift: {self.pick_drift()} distinct fault-aware picks; {crossover}",
            self.fallback.summary(),
        ]
        return "\n".join(parts)


def run(config: FaultToleranceConfig | None = None) -> FaultToleranceResult:
    """Sweep device failure rates and report the blind-vs-aware comparison."""
    cfg = config or FaultToleranceConfig()
    rates = tuple(float(r) for r in cfg.failure_rates)
    if len(rates) < 2:
        raise ValueError("the failure sweep needs at least 2 rates")
    if sorted(rates) != list(rates):
        raise ValueError(f"failure rates must be ascending, got {rates}")
    base = edge_cluster_platform()
    chain = fault_chain(cfg)
    retry = RetryPolicy(max_attempts=cfg.max_attempts, backoff_base_s=cfg.backoff_base_s)
    axis = DeviceFailureRate(devices=tuple(cfg.faulty_devices))
    scenarios = ScenarioGrid.cartesian([(axis, rates)])
    platforms = scenarios.platforms(base)

    matrix = placement_matrix(len(chain), len(base.aliases))
    sweep: list[FaultPoint] = []
    blind_row: int | None = None
    blind_label = ""
    crossover: float | None = None
    for index, scenario in enumerate(scenarios):
        tables = build_fault_tables(chain, platforms[index], retry=retry)
        batch = execute_fault_placements(tables, matrix)
        times = batch.total_time_s
        aware_row = int(np.argmin(times))
        if blind_row is None:
            # Rate 0 evaluates the classic cost model exactly (the fault-free
            # collapse the engine tests pin), so this IS the fault-blind pick.
            blind_row = aware_row
            blind_label = batch.label(blind_row)
        aware_label = batch.label(aware_row)
        if crossover is None and aware_label != blind_label:
            crossover = rates[index]
        sweep.append(
            FaultPoint(
                scenario=scenario.name,
                rate=rates[index],
                aware=aware_label,
                aware_time_s=float(times[aware_row]),
                aware_success=float(batch.success_probability[aware_row]),
                blind=blind_label,
                blind_time_s=float(times[blind_row]),
                blind_success=float(batch.success_probability[blind_row]),
            )
        )

    executor = SimulatedExecutor(platforms[-1], seed=cfg.seed)
    fallback = plan_with_fallback(executor, chain, "time", retry=retry)
    return FaultToleranceResult(
        config=cfg,
        sweep=tuple(sweep),
        blind_label=blind_label,
        crossover_rate=crossover,
        fallback=fallback,
    )
