"""Experiment ``fleet``: fleet-optimal placement vs per-segment optima.

ROADMAP item 3 in one picture: a sampled user population (office Wi-Fi,
congested cellular, loaded-host segments) shares one edge platform, and the
placement that is optimal *for the fleet's tail* is not the placement any
single segment would pick for itself:

* a :class:`~repro.fleet.FleetSpec` is sampled into one weighted scenario per
  user and the whole (user, placement) grid is evaluated in one fused pass;
* per segment, the segment-optimal placement (expected time over that
  segment's users alone) is compared against the fleet-optimal placements
  under the tail objectives -- the weighted p-quantile
  (:class:`~repro.search.QuantileObjective`) and the SLO miss fraction
  (:class:`~repro.search.SLOObjective`, budget = ``slo_factor`` x the median
  user's personal best time);
* the same selection is run through :func:`~repro.search.search_grid` to pin
  the streaming path against the materialised reduction;
* finally :func:`~repro.fleet.solve_contention` couples the users through a
  :class:`~repro.fleet.ContentionModel`: the whole fleet adopting the
  fleet-optimal placement loads its shared devices, and the fixed-point
  iteration reports what sharing actually costs (the contended mean user
  time vs the uncontended analysis above).

The acceptance claim -- the fleet-optimal placement differs from at least
one segment's own optimum -- holds by construction: the congested segment's
users dominate the p95 tail, dragging the fleet pick away from what the
well-connected majority would choose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..devices import SimulatedExecutor, edge_cluster_platform
from ..devices.grid import execute_placements_grid
from ..fleet import (
    ContentionModel,
    ContentionResult,
    FleetSpec,
    NormalAxis,
    SampledFleet,
    UniformAxis,
    UserSegment,
    sample_fleet,
    solve_contention,
)
from ..offload.space import placement_matrix
from ..reporting import format_table
from ..scenarios import DeviceLoadFactor, LinkBandwidthScale, LinkLatencyScale
from ..search import (
    ExpectedValueObjective,
    GridSearchResult,
    QuantileObjective,
    SLOObjective,
    search_grid,
)
from ..tasks import RegularizedLeastSquaresTask, TaskChain

__all__ = ["FleetConfig", "FleetSegmentReport", "FleetResult", "run", "fleet_chain", "default_fleet_spec"]


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of the fleet experiment."""

    #: Sampled fleet size (kept modest: the full placement space is evaluated
    #: per user; the benchmark scales the same machinery to 10**5 users).
    n_users: int = 48
    #: Matrix sizes of the chained loop tasks (4 tasks -> 256 placements).
    task_sizes: Sequence[int] = (60, 120, 200, 320)
    #: Loop length of every task.
    iterations: int = 20
    #: Tail quantile of the fleet objective (p95 by default).
    q: float = 0.95
    #: SLO deadline = this factor times the median user's personal best time.
    slo_factor: float = 1.5
    #: Contention strength of the shared-device coupling demo.
    contention_alpha: float = 0.05
    seed: int = 0


def fleet_chain(config: FleetConfig | None = None) -> TaskChain:
    """The experiment's loop chain (device-generated data, link-sensitive)."""
    cfg = config or FleetConfig()
    tasks = [
        RegularizedLeastSquaresTask(
            size=size, iterations=cfg.iterations, name=f"L{i + 1}", generate_on_host=False
        )
        for i, size in enumerate(cfg.task_sizes)
    ]
    return TaskChain(tasks, name="fleet-serving")


def default_fleet_spec() -> FleetSpec:
    """Three segments of the edge-cluster user base.

    * ``office-wifi`` (60% of the mass): healthy, mildly varying links --
      offloading to the accelerators is cheap;
    * ``congested-cell`` (30%): radio bandwidth collapsed to 10-40% with
      inflated latency -- offloading is expensive, the tail lives here;
    * ``loaded-host`` (10%): the handset itself is busy (load 2-4x), pushing
      work off-device even when links are mediocre.
    """
    return FleetSpec(
        segments=(
            UserSegment(
                "office-wifi",
                weight=6.0,
                axes=(
                    UniformAxis(LinkBandwidthScale(), 0.8, 1.3),
                    UniformAxis(LinkLatencyScale(), 0.8, 1.2),
                ),
            ),
            UserSegment(
                "congested-cell",
                weight=3.0,
                axes=(
                    UniformAxis(LinkBandwidthScale(), 0.1, 0.4),
                    UniformAxis(LinkLatencyScale(), 2.0, 6.0),
                ),
            ),
            UserSegment(
                "loaded-host",
                weight=1.0,
                axes=(
                    UniformAxis(LinkBandwidthScale(), 0.6, 1.1),
                    NormalAxis(DeviceLoadFactor(devices=("D",)), mean=3.0, std=0.7, low=1.5, high=4.0),
                ),
            ),
        )
    )


@dataclass(frozen=True)
class FleetSegmentReport:
    """One segment's view: its own optimum vs the fleet's pick."""

    segment: str
    n_users: int
    mass_share: float
    #: The placement this segment would pick for itself (expected time over
    #: its own users only).
    own_optimum: str
    own_expected_time_s: float
    #: Expected time of the *fleet's* quantile-optimal placement on this segment.
    fleet_pick_expected_time_s: float

    @property
    def diverges(self) -> bool:
        """Whether the fleet pick is not this segment's own optimum."""
        return self.own_expected_time_s != self.fleet_pick_expected_time_s


@dataclass(frozen=True)
class FleetResult:
    config: FleetConfig
    fleet: SampledFleet
    segments: tuple[FleetSegmentReport, ...]
    #: Fleet-optimal placements: weighted p-quantile, expectation, SLO.
    quantile_optimum: str
    quantile_value_s: float
    expected_optimum: str
    slo_optimum: str
    #: Weighted fraction of users *missing* the deadline under the SLO pick.
    slo_miss_fraction: float
    slo_budget_s: float
    search: GridSearchResult
    contention: ContentionResult

    @property
    def divergent_segments(self) -> tuple[str, ...]:
        """Segments whose own optimum is not the fleet's quantile pick."""
        return tuple(
            report.segment
            for report in self.segments
            if report.own_optimum != self.quantile_optimum
        )

    def report(self) -> str:
        rows = [
            (
                report.segment,
                report.n_users,
                f"{report.mass_share:.0%}",
                report.own_optimum,
                f"{report.own_expected_time_s * 1e3:.1f}",
                f"{report.fleet_pick_expected_time_s * 1e3:.1f}",
                "yes" if report.own_optimum != self.quantile_optimum else "no",
            )
            for report in self.segments
        ]
        q_label = f"p{self.config.q * 100:g}"
        parts = [
            f"Fleet experiment: {self.fleet.n_users} sampled users, "
            f"{len(self.segments)} segments, {self.search.space_size} placements/user",
            format_table(
                (
                    "segment",
                    "users",
                    "mass",
                    "own optimum",
                    "own E[time] [ms]",
                    "fleet pick E[time] [ms]",
                    "diverges",
                ),
                rows,
            ),
            "",
            f"fleet optimum by {q_label}: {self.quantile_optimum} "
            f"({q_label} time {self.quantile_value_s * 1e3:.1f} ms)",
            f"fleet optimum by expectation: {self.expected_optimum}",
            f"fleet optimum by SLO (deadline {self.slo_budget_s * 1e3:.1f} ms): "
            f"{self.slo_optimum} ({1.0 - self.slo_miss_fraction:.1%} of user mass meets it)",
            f"divergence: fleet {q_label} pick differs from "
            f"{len(self.divergent_segments)}/{len(self.segments)} segment optima "
            f"({', '.join(self.divergent_segments) or 'none'})",
            f"contention: {self.contention.summary()}",
        ]
        return "\n".join(parts)


def run(config: FleetConfig | None = None) -> FleetResult:
    """Sample the fleet, select fleet-robust placements, couple via contention."""
    cfg = config or FleetConfig()
    if cfg.n_users < len(default_fleet_spec().segments):
        raise ValueError("n_users must cover at least one user per segment")
    platform = edge_cluster_platform()
    chain = fleet_chain(cfg)
    spec = default_fleet_spec()
    fleet = sample_fleet(spec, cfg.n_users, seed=cfg.seed)
    executor = SimulatedExecutor(platform, seed=cfg.seed)

    # One fused pass over every (user, placement) pair; the space is small
    # enough (m**k = 256) to materialise for the per-segment analysis.
    tables = executor.grid_cost_tables(chain, fleet.grid)
    matrix = placement_matrix(tables.n_tasks, tables.n_devices)
    grid = execute_placements_grid(tables, matrix)
    times = grid.metric_values("time")  # (n_users, n_placements)
    labels = grid.labels()
    weights = fleet.grid.weights

    per_user_best = times.min(axis=1)
    slo_budget = cfg.slo_factor * float(np.median(per_user_best))

    # Fleet-level selection through the streaming search path.
    objectives = (
        QuantileObjective(base="time", q=cfg.q),
        ExpectedValueObjective(base="time"),
        SLOObjective(base="time", budget=slo_budget),
    )
    search = search_grid(executor, chain, fleet.grid, objectives=objectives, top_k=5)
    quantile_sel = search.top[objectives[0].name]
    expected_sel = search.top[objectives[1].name]
    slo_sel = search.top[objectives[2].name]
    quantile_optimum = quantile_sel.labels[0]
    fleet_column = int(quantile_sel.indices[0])

    # Per-segment optima: expected time over the segment's own users only.
    segments: list[FleetSegmentReport] = []
    total_mass = float(weights.sum())
    for name in spec.names:
        users = np.array(fleet.users_of_segment(name), dtype=np.intp)
        if users.size == 0:
            continue
        seg_weights = weights[users]
        seg_expected = seg_weights @ times[users] / seg_weights.sum()
        own_column = int(seg_expected.argmin())
        segments.append(
            FleetSegmentReport(
                segment=name,
                n_users=int(users.size),
                mass_share=float(seg_weights.sum()) / total_mass,
                own_optimum=labels[own_column],
                own_expected_time_s=float(seg_expected[own_column]),
                fleet_pick_expected_time_s=float(seg_expected[fleet_column]),
            )
        )

    # Couple the users: the whole fleet adopts the fleet-optimal placement,
    # its devices fill up with tenants, and the fixed point prices the
    # sharing (uncontended analysis above vs contended reality below).
    contention = solve_contention(
        executor,
        chain,
        fleet,
        ContentionModel(alpha=cfg.contention_alpha),
        placements=quantile_optimum,
    )

    return FleetResult(
        config=cfg,
        fleet=fleet,
        segments=tuple(segments),
        quantile_optimum=quantile_optimum,
        quantile_value_s=float(quantile_sel.values[0]),
        expected_optimum=expected_sel.labels[0],
        slo_optimum=slo_sel.labels[0],
        slo_miss_fraction=float(slo_sel.values[0]),
        slo_budget_s=slo_budget,
        search=search,
        contention=contention,
    )
