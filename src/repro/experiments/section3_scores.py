"""Experiment ``section3_scores``: relative scores with few measurements (N = 30).

Section III observes that with only N = 30 measurements the comparison between
``AD`` and ``AA`` sits "just at the threshold of being better", so across the
``Rep`` repetitions of Procedure 4 the borderline algorithm splits its relative
score between the first and second cluster, while the final (max-score,
cumulated) assignment recovers the clean clustering
``C1:{AD}, C2:{AA}, C3:{DD, DA}``.

This experiment reruns the Figure 1 workload with N = 30 and a *stochastic*
bootstrap comparator and reports both the per-rank relative scores and the
derived final clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.analyzer import AnalysisResult
from ..core.scores import FinalClustering, ScoreTable
from ..devices import SimulatedExecutor, cpu_gpu_platform
from ..measurement.dataset import MeasurementSet
from ..measurement.noise import default_system_noise
from ..offload import enumerate_algorithms, measure_algorithms
from ..reporting import cluster_table, score_table
from ..tasks import figure1_chain
from .base import default_analyzer

__all__ = ["Section3Config", "Section3Result", "run"]


@dataclass(frozen=True)
class Section3Config:
    """Parameters of the Section III relative-score illustration."""

    #: Few measurements on purpose: this is what makes the comparisons borderline.
    n_measurements: int = 30
    repetitions: int = 200
    seed: int = 0
    noise_level: float = 1.0


@dataclass(frozen=True)
class Section3Result:
    config: Section3Config
    measurements: MeasurementSet
    analysis: AnalysisResult

    @property
    def score_table(self) -> ScoreTable:
        return self.analysis.score_table

    @property
    def final(self) -> FinalClustering:
        return self.analysis.final

    def fractional_labels(self) -> list[str]:
        """Algorithms whose relative score is split over more than one rank."""
        return [
            str(label)
            for label in self.score_table.labels
            if len(self.score_table.scores_of(label)) > 1
        ]

    def report(self) -> str:
        parts = [
            f"Section III illustration (N={self.config.n_measurements}, "
            f"Rep={self.config.repetitions}):",
            score_table(self.score_table, title="Relative scores per rank (Procedure 4)"),
            "",
            cluster_table(self.final, title="Final clustering (max score, cumulated)"),
            "",
            "Algorithms with fractional scores (borderline comparisons): "
            + (", ".join(self.fractional_labels()) or "none"),
        ]
        return "\n".join(parts)


def run(config: Section3Config | None = None) -> Section3Result:
    """Run the Section III illustration on the simulated CPU+GPU platform."""
    cfg = config or Section3Config()
    platform = cpu_gpu_platform()
    executor = SimulatedExecutor(
        platform, noise=default_system_noise(cfg.noise_level), seed=cfg.seed
    )
    chain = figure1_chain()
    algorithms = enumerate_algorithms(chain, platform)
    # Routed through the batch execution engine (one vectorized pass over the
    # whole space, bit-for-bit identical to the per-placement loop).
    measurements = measure_algorithms(algorithms, executor, repetitions=cfg.n_measurements)
    analyzer = default_analyzer(
        seed=cfg.seed,
        repetitions=cfg.repetitions,
        n_measurements=cfg.n_measurements,
        stochastic=True,
    )
    # Single-entry campaign through the batched API: each entry is analyzed by
    # an independent analyzer copy, so this equals analyzer.analyze(measurements).
    key = f"N={cfg.n_measurements}"
    analysis = analyzer.analyze_many({key: measurements})[key]
    return Section3Result(config=cfg, measurements=measurements, analysis=analysis)
