"""Experiment ``planner_scale``: the enumerator -> planner crossover, measured.

Every previous speed layer made brute-force enumeration faster by a constant
factor; the chain planner changes the *asymptotics* (``O(k * m**2)`` vs
``m**k``).  This experiment makes that concrete on the 4-device edge cluster:

* on **enumerable** chain lengths, both engines find the optimum -- the values
  are checked equal and both are timed, locating the crossover chain length
  beyond which the exact DP wins (in practice: immediately);
* on **planner-only** chain lengths (up to hundreds of tasks, spaces like
  ``4**200`` that no enumeration engine can touch), the DP is timed alone and
  its optimum sanity-bounded by the all-host placement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..devices import SimulatedExecutor, edge_cluster_platform
from ..reporting import format_table
from ..tasks import GemmLoopTask, TaskChain

__all__ = ["PlannerScaleConfig", "PlannerScaleResult", "CrossoverRow", "ScaleRow", "run"]


@dataclass(frozen=True)
class PlannerScaleConfig:
    """Parameters of the planner-scale experiment."""

    #: Chain lengths swept by BOTH engines (space ``4**k`` must stay enumerable).
    enumerable_tasks: tuple[int, ...] = (2, 4, 6, 8)
    #: Chain lengths planned by the DP alone (space far beyond enumeration).
    scale_tasks: tuple[int, ...] = (25, 50, 100, 200)
    objective: str = "time"
    seed: int = 0


@dataclass(frozen=True)
class CrossoverRow:
    """One enumerable chain length, both engines timed on the same space."""

    n_tasks: int
    space_size: int
    enumerate_seconds: float
    plan_seconds: float
    value: float

    @property
    def speedup(self) -> float:
        return self.enumerate_seconds / self.plan_seconds


@dataclass(frozen=True)
class ScaleRow:
    """One planner-only chain length (the space is astronomically large)."""

    n_tasks: int
    space_digits: int
    plan_seconds: float
    value: float


@dataclass(frozen=True)
class PlannerScaleResult:
    config: PlannerScaleConfig
    n_devices: int
    crossover: tuple[CrossoverRow, ...]
    scale: tuple[ScaleRow, ...]

    @property
    def crossover_tasks(self) -> int | None:
        """Smallest swept chain length at which the planner beats enumeration."""
        for row in self.crossover:
            if row.speedup > 1.0:
                return row.n_tasks
        return None

    def report(self) -> str:
        crossover_rows = [
            (
                str(row.n_tasks),
                f"{self.n_devices}**{row.n_tasks} = {row.space_size}",
                f"{row.enumerate_seconds * 1e3:.2f}",
                f"{row.plan_seconds * 1e3:.2f}",
                f"{row.speedup:.1f}x",
            )
            for row in self.crossover
        ]
        scale_rows = [
            (
                str(row.n_tasks),
                f"~1e{row.space_digits - 1}",
                f"{row.plan_seconds * 1e3:.2f}",
                f"{row.value:.6g}",
            )
            for row in self.scale
        ]
        parts = [
            f"Planner scale experiment ({self.n_devices} devices, objective "
            f"{self.config.objective!r})",
            "",
            "enumerator vs exact DP on enumerable spaces (identical optima):",
            format_table(
                ("tasks", "space", "enumerate [ms]", "plan [ms]", "speedup"),
                crossover_rows,
            ),
            "",
            f"crossover: planner wins from k = {self.crossover_tasks} on",
            "",
            "exact DP alone, beyond any enumeration horizon:",
            format_table(("tasks", "space", "plan [ms]", "optimum [s]"), scale_rows),
        ]
        return "\n".join(parts)


def _random_chain(rng: np.random.Generator, n_tasks: int) -> TaskChain:
    tasks = [
        GemmLoopTask(
            int(rng.integers(8, 96)),
            iterations=int(rng.integers(1, 4)),
            name=f"L{i + 1}",
        )
        for i in range(n_tasks)
    ]
    return TaskChain(tasks, name=f"planner-scale-{n_tasks}")


def run(config: PlannerScaleConfig | None = None) -> PlannerScaleResult:
    """Time the enumerator -> planner crossover and the planner-only scale sweep."""
    from ..search import plan_workload, search_space

    cfg = config or PlannerScaleConfig()
    rng = np.random.default_rng(cfg.seed)
    platform = edge_cluster_platform()
    executor = SimulatedExecutor(platform)
    n_devices = len(platform.aliases)

    crossover: list[CrossoverRow] = []
    for n_tasks in cfg.enumerable_tasks:
        chain = _random_chain(rng, n_tasks)
        t0 = time.perf_counter()
        streamed = search_space(
            executor, chain, objectives=(cfg.objective,), top_k=1, frontier=None
        )
        enumerate_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        plan = plan_workload(executor, chain, cfg.objective, method="dp")
        plan_seconds = time.perf_counter() - t0
        best = float(streamed.top[cfg.objective].values[0])
        if plan.value != best:
            raise AssertionError(
                f"planner/enumerator disagree at k={n_tasks}: {plan.value} vs {best}"
            )
        crossover.append(
            CrossoverRow(
                n_tasks=n_tasks,
                space_size=n_devices**n_tasks,
                enumerate_seconds=enumerate_seconds,
                plan_seconds=plan_seconds,
                value=plan.value,
            )
        )

    scale: list[ScaleRow] = []
    for n_tasks in cfg.scale_tasks:
        chain = _random_chain(rng, n_tasks)
        t0 = time.perf_counter()
        plan = plan_workload(executor, chain, cfg.objective, method="dp")
        plan_seconds = time.perf_counter() - t0
        all_host = executor.execute(chain, platform.host * n_tasks)
        if cfg.objective == "time" and plan.value > all_host.total_time_s:
            raise AssertionError(
                f"planned optimum {plan.value} worse than all-host "
                f"{all_host.total_time_s} at k={n_tasks}"
            )
        scale.append(
            ScaleRow(
                n_tasks=n_tasks,
                space_digits=len(str(n_devices**n_tasks)),
                plan_seconds=plan_seconds,
                value=plan.value,
            )
        )

    return PlannerScaleResult(
        config=cfg,
        n_devices=n_devices,
        crossover=tuple(crossover),
        scale=tuple(scale),
    )
