"""Experiment ``robustness``: ranking drift along a wifi -> lte degradation sweep.

The paper shows that *system noise* makes single-number rankings unstable;
this experiment shows the same instability under *environment drift*.  A
5-task loop chain runs on the 4-device edge cluster while every radio link
(host/NPU to edge server and cloud GPU) degrades from healthy Wi-Fi to LTE in
``n_points`` interpolation steps:

* per scenario, the **whole placement space** (``4**5 = 1024``) is evaluated
  through the condition-stacked grid engine, giving the per-scenario winner
  and the decision-model pick;
* a fixed candidate set (the union of each scenario's top placements) is
  measured under noise and clustered into performance classes per scenario,
  exposing how the class structure itself drifts;
* the :class:`~repro.selection.robust.RobustDecisionModel` reports the
  placements that stay good across the *whole* sweep (worst case and minimax
  regret) -- typically neither endpoint's winner.

The tasks generate their data on the executing device (``generate_on_host=
False``), the regime where offloading is latency- rather than byte-bound and
therefore genuinely sensitive to link quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.analyzer import AnalysisResult
from ..devices import SimulatedExecutor, edge_cluster_platform, lte, wifi_ac
from ..devices.batch import ChainCostTables
from ..devices.grid import GridExecutionResult, execute_placements_grid
from ..measurement.noise import default_system_noise
from ..offload.space import placement_matrix
from ..reporting import format_table
from ..scenarios import ScenarioGrid, link_degradation_grid
from ..selection import DecisionModel, RobustDecision, RobustDecisionModel
from ..tasks import RegularizedLeastSquaresTask, TaskChain
from .base import default_analyzer

__all__ = ["RobustnessConfig", "RobustnessPoint", "RobustnessResult", "run", "drift_chain"]


@dataclass(frozen=True)
class RobustnessConfig:
    """Parameters of the robustness experiment."""

    #: Number of wifi->lte interpolation points (the acceptance sweep uses >= 5).
    n_points: int = 6
    #: Matrix sizes of the chained loop tasks (mixed small-to-heavy, so the
    #: profitable offload boundary moves as the links degrade).
    task_sizes: Sequence[int] = (60, 100, 160, 260, 420)
    #: Loop length of every task (compute-heavy loops make offloading pay).
    iterations: int = 20
    #: Links that ride the degrading radio (every remote hop of the cluster).
    degraded_links: Sequence[tuple[str, str]] = (
        ("D", "E"),
        ("D", "A"),
        ("N", "E"),
        ("N", "A"),
        ("E", "A"),
    )
    #: Per scenario, this many of its best placements join the fixed
    #: clustering candidate set (union over scenarios).
    candidates_per_scenario: int = 4
    n_measurements: int = 30
    repetitions: int = 60
    seed: int = 0
    noise_level: float = 1.0
    #: Cost weight of the per-scenario decision model (seconds per cost unit).
    cost_weight: float = 1000.0


def drift_chain(config: RobustnessConfig | None = None) -> TaskChain:
    """The experiment's loop chain (device-generated data, mixed task sizes)."""
    cfg = config or RobustnessConfig()
    tasks = [
        RegularizedLeastSquaresTask(
            size=size, iterations=cfg.iterations, name=f"L{i + 1}", generate_on_host=False
        )
        for i, size in enumerate(cfg.task_sizes)
    ]
    return TaskChain(tasks, name="robustness-drift")


@dataclass(frozen=True)
class RobustnessPoint:
    """Everything observed at one point of the degradation sweep."""

    scenario: str
    #: Interpolation parameter: 0 = healthy Wi-Fi, 1 = LTE fallback.
    t: float
    winner: str
    winner_time_s: float
    decision: str
    n_clusters: int
    fastest_class: tuple[str, ...]
    analysis: AnalysisResult


@dataclass(frozen=True)
class RobustnessResult:
    config: RobustnessConfig
    sweep: tuple[RobustnessPoint, ...]
    #: The fixed candidate labels clustered at every point, in batch order.
    candidates: tuple[str, ...]
    robust_worst_case: RobustDecision
    robust_regret: RobustDecision
    grid: GridExecutionResult

    def winners(self) -> dict[str, str]:
        return {point.scenario: point.winner for point in self.sweep}

    def winner_drift(self) -> int:
        """Number of distinct per-scenario winners along the sweep."""
        return len(dict.fromkeys(point.winner for point in self.sweep))

    def class_drift(self) -> int:
        """Number of distinct fastest performance classes along the sweep."""
        return len(dict.fromkeys(frozenset(point.fastest_class) for point in self.sweep))

    def report(self) -> str:
        rows = [
            (
                point.scenario,
                point.winner,
                f"{point.winner_time_s * 1e3:.1f}",
                point.decision,
                point.n_clusters,
                " ".join(point.fastest_class),
            )
            for point in self.sweep
        ]
        parts = [
            "Robustness experiment: wifi -> lte degradation sweep "
            f"({len(self.sweep)} points, {len(self.grid.labels())} placements/scenario)",
            format_table(
                (
                    "scenario",
                    "best placement",
                    "best time [ms]",
                    "decision pick",
                    "classes",
                    "fastest class",
                ),
                rows,
            ),
            "",
            f"winner drift: {self.winner_drift()} distinct winners; "
            f"performance-class drift: {self.class_drift()} distinct fastest classes",
            f"robust (worst case): {self.robust_worst_case.summary()}",
            f"robust (min regret): {self.robust_regret.summary()}",
        ]
        return "\n".join(parts)


def run(config: RobustnessConfig | None = None) -> RobustnessResult:
    """Sweep the link degradation and report winner/performance-class drift."""
    cfg = config or RobustnessConfig()
    if cfg.n_points < 2:
        raise ValueError("the degradation sweep needs at least 2 points")
    if cfg.candidates_per_scenario < 1:
        raise ValueError("candidates_per_scenario must be positive")
    base = edge_cluster_platform()
    chain = drift_chain(cfg)
    scenarios: ScenarioGrid = link_degradation_grid(
        tuple(cfg.degraded_links), start=wifi_ac(), end=lte(), n_points=cfg.n_points
    )
    platforms = scenarios.platforms(base)

    # One condition-stacked pass over all (scenario, placement) pairs.
    tables = ChainCostTables.build_grid(chain, platforms)
    matrix = placement_matrix(len(chain), tables.n_devices)
    grid = execute_placements_grid(tables, matrix)
    labels = grid.labels()
    times = grid.total_time_s

    # Fixed clustering candidates: the union of every scenario's top placements
    # (so classes are comparable across the sweep), in placement order.
    top = np.argsort(times, axis=1, kind="stable")[:, : cfg.candidates_per_scenario]
    candidate_rows = np.unique(top.ravel())
    candidates = tuple(labels[int(row)] for row in candidate_rows)

    decision_model = DecisionModel(cost_weight=cfg.cost_weight)
    t_values = [i / (cfg.n_points - 1) for i in range(cfg.n_points)]
    sweep: list[RobustnessPoint] = []
    for index, scenario in enumerate(scenarios):
        executor = SimulatedExecutor(
            platforms[index], noise=default_system_noise(cfg.noise_level), seed=cfg.seed + index
        )
        batch = executor.execute_batch(chain, matrix[candidate_rows])
        measurements = executor.measure_batch(batch, repetitions=cfg.n_measurements)
        # Deterministic comparator: the engine precomputes the pairwise
        # outcome matrix once per scenario, keeping the sweep fast.
        analyzer = default_analyzer(
            seed=cfg.seed,
            repetitions=cfg.repetitions,
            n_measurements=cfg.n_measurements,
            stochastic=False,
        )
        analysis = analyzer.analyze(measurements)
        winner_row = int(np.argmin(times[index]))
        decision = decision_model.decide_from_batch(analysis.final, batch)
        sweep.append(
            RobustnessPoint(
                scenario=scenario.name,
                t=t_values[index],
                winner=labels[winner_row],
                winner_time_s=float(times[index, winner_row]),
                decision=str(decision.label),
                n_clusters=analysis.final.n_clusters,
                fastest_class=tuple(str(label) for label in analysis.best_algorithms()),
                analysis=analysis,
            )
        )

    robust_worst = RobustDecisionModel(
        model=decision_model, criterion="worst_case"
    ).decide_grid(grid)
    robust_regret = RobustDecisionModel(model=decision_model, criterion="regret").decide_grid(grid)
    return RobustnessResult(
        config=cfg,
        sweep=tuple(sweep),
        candidates=candidates,
        robust_worst_case=robust_worst,
        robust_regret=robust_regret,
        grid=grid,
    )
