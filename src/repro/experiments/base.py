"""Shared plumbing for the experiment runners.

Every experiment module exposes a ``*Config`` dataclass and a ``run(config)``
function returning a result object with a ``report()`` method that prints the
regenerated paper artefact (table rows, histogram, trace, ...).  The registry
in :mod:`repro.experiments` maps experiment ids (``"table1"``, ``"figure1b"``,
...) to these runners so the benchmark harness and the examples can look them
up by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..core.analyzer import RelativePerformanceAnalyzer
from ..core.comparison import BootstrapComparator

__all__ = ["ExperimentResult", "default_analyzer"]


class ExperimentResult(Protocol):
    """Minimal interface every experiment result provides."""

    def report(self) -> str:  # pragma: no cover - protocol
        ...


def default_analyzer(
    seed: int = 0,
    repetitions: int = 100,
    n_measurements: int = 30,
    stochastic: bool = True,
) -> RelativePerformanceAnalyzer:
    """The analyzer configuration used by the paper-shaped experiments.

    The equivalence sensitivity of the bootstrap comparator depends on the
    number of measurements (its per-quantile intervals shrink with N); the
    experiments simply pass their N so the comparator resamples accordingly.
    ``stochastic=True`` draws fresh resamples per comparison, which is what
    gives the fractional relative scores of Procedure 4 (borderline pairs
    "switch between < and ~" across repetitions, Section III).
    """
    comparator = BootstrapComparator(
        seed=seed,
        n_resamples=min(max(100, 2 * n_measurements), 250),
        stochastic=stochastic,
        # The inter-quartile profile is robust to the occasional outlier run
        # (cache miss, preemption) that the system-noise model injects; the
        # extreme tails would otherwise dominate the comparison of heavily
        # overlapping distributions.
        quantiles=(0.25, 0.5, 0.75),
    )
    return RelativePerformanceAnalyzer(comparator=comparator, repetitions=repetitions, seed=seed)
