"""Experiment ``table1``: clustering of the eight RLS placements (Table I).

The scientific code of Procedure 5 -- three Regularised Least Squares
MathTasks of sizes 50, 75 and 300 -- can be split between the edge device
``D`` and the accelerator ``A`` in ``2^3 = 8`` ways.  Each placement is
measured N = 30 times and the measurements are clustered with the
relative-performance methodology; the paper reports five performance classes
with ``DDA`` on top, ``DDD`` second and ``AAD`` last.

Expected shape on the simulated platform (DESIGN.md, per-experiment index):

* ``DDA`` is in the best class; ``DDD`` is in the best or second class, and
  ``DDA`` is only marginally faster (speed-up ~1.1 for loop size 10);
* every placement that offloads the small ``L1`` is worse than ``DDD``;
* ``AAD`` is in the worst class;
* ``DAA`` is not worse than ``DDD``'s class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.analyzer import AnalysisResult
from ..devices import SimulatedExecutor, cpu_gpu_platform
from ..measurement.dataset import MeasurementSet
from ..measurement.noise import default_system_noise
from ..offload import (
    AlgorithmProfile,
    OffloadedAlgorithm,
    enumerate_algorithms,
    profiles_from_batch,
)
from ..reporting import cluster_table, measurement_summary_table
from ..tasks import table1_chain
from .base import default_analyzer

__all__ = ["Table1Config", "Table1Result", "run"]

#: The clustering published in Table I of the paper (cluster -> {algorithm: relative score}).
PAPER_TABLE1 = {
    1: {"DDA": 1.0, "DAA": 0.6},
    2: {"DDD": 1.0, "DAA": 0.4},
    3: {"ADA": 1.0, "ADD": 1.0, "DAD": 0.7},
    4: {"AAA": 1.0, "DAD": 0.3},
    5: {"AAD": 1.0},
}


@dataclass(frozen=True)
class Table1Config:
    """Parameters of the Table I experiment."""

    #: RLS loop length ``n`` of Procedure 6 (the paper discusses n = 10).
    loop_size: int = 10
    #: Measurements per algorithm (the paper uses 30).
    n_measurements: int = 30
    #: Procedure-4 repetitions.
    repetitions: int = 100
    seed: int = 0
    noise_level: float = 1.0


@dataclass(frozen=True)
class Table1Result:
    config: Table1Config
    algorithms: tuple[OffloadedAlgorithm, ...]
    measurements: MeasurementSet
    analysis: AnalysisResult
    profiles: Mapping[str, AlgorithmProfile]
    #: Energy measurements and their clustering, analyzed in the same campaign
    #: as the execution times (the paper's Section IV energy discussion).
    energy_measurements: MeasurementSet | None = None
    energy_analysis: AnalysisResult | None = None

    # -- the qualitative claims the paper's Table I supports ----------------------
    def cluster_of(self, label: str) -> int:
        return self.analysis.cluster_of(label)

    @property
    def speedup_dda_over_ddd(self) -> float:
        """Mean speed-up of algDDA over algDDD (the paper reports ~1.05 at n=10)."""
        return self.measurements.speedup("DDD", "DDA")

    def qualitative_checks(self) -> dict[str, bool]:
        """The shape assertions listed in DESIGN.md for this experiment."""
        cluster = self.analysis.clusters()
        n_clusters = self.analysis.n_clusters
        checks = {
            "DDA in best cluster": self.cluster_of("DDA") == 1,
            "DDD in one of the two best clusters": self.cluster_of("DDD") <= 2,
            "DDA at least as good as DDD": self.cluster_of("DDA") <= self.cluster_of("DDD"),
            "AAD in the worst cluster": self.cluster_of("AAD") == n_clusters,
            "offloading L1 never helps": all(
                self.cluster_of(label) > self.cluster_of("DDD")
                for label in ("ADD", "ADA", "AAD", "AAA")
            ),
            "DAA not worse than DDD's class": self.cluster_of("DAA") <= self.cluster_of("DDD"),
            "at least four performance classes": n_clusters >= 4,
            "modest speed-up of DDA over DDD": 1.0 < self.speedup_dda_over_ddd < 1.35,
        }
        del cluster
        return checks

    def report(self) -> str:
        checks = self.qualitative_checks()
        parts = [
            f"Table I -- clustering of the 8 RLS placements "
            f"(loop size n={self.config.loop_size}, N={self.config.n_measurements}):",
            measurement_summary_table(self.measurements),
            "",
            cluster_table(self.analysis.final),
            "",
            f"speed-up of algDDA over algDDD: {self.speedup_dda_over_ddd:.3f}",
            "",
            "Qualitative checks against the published Table I:",
        ]
        parts += [f"  [{'x' if ok else ' '}] {name}" for name, ok in checks.items()]
        if self.energy_analysis is not None:
            parts += [
                "",
                cluster_table(
                    self.energy_analysis.final, title="Energy clustering (same campaign)"
                ),
            ]
        return "\n".join(parts)


def run(config: Table1Config | None = None) -> Table1Result:
    """Run the Table I experiment on the simulated CPU+GPU platform.

    Execution time *and* energy are clustered as one batched campaign through
    :meth:`~repro.core.analyzer.RelativePerformanceAnalyzer.analyze_many`;
    each campaign entry is analyzed by an independent analyzer copy, so the
    published time clustering is unchanged by the energy rider.
    """
    cfg = config or Table1Config()
    platform = cpu_gpu_platform()
    executor = SimulatedExecutor(
        platform, noise=default_system_noise(cfg.noise_level), seed=cfg.seed
    )
    chain = table1_chain(loop_size=cfg.loop_size)
    algorithms = enumerate_algorithms(chain, platform)
    # One vectorized batch execution serves the time measurements, the energy
    # measurements and the noise-free profiles (previously three passes of
    # per-placement execution); the noise is drawn per algorithm in the same
    # RNG order, so the published clustering is bit-for-bit unchanged.
    space = executor.execute_batch(chain, [a.placement.devices for a in algorithms])
    measurements = executor.measure_batch(space, repetitions=cfg.n_measurements)
    energy = executor.measure_batch(space, repetitions=cfg.n_measurements, metric="energy")
    analyzer = default_analyzer(
        seed=cfg.seed, repetitions=cfg.repetitions, n_measurements=cfg.n_measurements
    )
    analyses = analyzer.analyze_many({"time": measurements, "energy": energy})
    profiles = profiles_from_batch(algorithms, space)
    return Table1Result(
        config=cfg,
        algorithms=tuple(algorithms),
        measurements=measurements,
        analysis=analyses["time"],
        profiles=profiles,
        energy_measurements=energy,
        energy_analysis=analyses["energy"],
    )
