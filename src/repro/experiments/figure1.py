"""Experiment ``figure1``: the two-loop GEMM code split between CPU and GPU.

Regenerates

* **Figure 1a** -- the four ways of splitting the code among the devices
  (``DD``, ``DA``, ``AD``, ``AA``), and
* **Figure 1b** -- the distributions of N = 500 execution-time measurements of
  each split on the CPU+GPU platform, plus the clustering they induce.

Expected shape (cf. DESIGN.md): ``AD`` is clearly the fastest, ``AA`` follows,
and ``DD`` / ``DA`` bring up the rear with heavily overlapping distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.analyzer import AnalysisResult
from ..devices import SimulatedExecutor, cpu_gpu_platform
from ..measurement.dataset import MeasurementSet
from ..measurement.noise import default_system_noise
from ..offload import OffloadedAlgorithm, enumerate_algorithms, measure_algorithms
from ..reporting import cluster_table, distribution_report, measurement_summary_table
from ..tasks import figure1_chain
from .base import default_analyzer

__all__ = ["Figure1Config", "Figure1Result", "run"]


@dataclass(frozen=True)
class Figure1Config:
    """Parameters of the Figure 1 experiment."""

    #: Number of measurements per algorithm (the paper uses 500 in Figure 1b).
    n_measurements: int = 500
    #: Number of Procedure-4 repetitions.
    repetitions: int = 100
    #: Seed for the simulator noise, the comparator and the shuffles.
    seed: int = 0
    #: Overall system-noise level of the simulated platform.
    noise_level: float = 1.0


@dataclass(frozen=True)
class Figure1Result:
    """Outputs of the Figure 1 experiment."""

    config: Figure1Config
    algorithms: tuple[OffloadedAlgorithm, ...]
    measurements: MeasurementSet
    analysis: AnalysisResult

    @property
    def labels(self) -> list[str]:
        return [algorithm.label for algorithm in self.algorithms]

    def splits_report(self) -> str:
        """Figure 1a: the enumerated splits of the code among the devices."""
        lines = ["Figure 1a -- ways of splitting the two-loop code between D and A:"]
        for algorithm in self.algorithms:
            loops = ", ".join(
                f"{task.name}->{device}" for task, device in zip(algorithm.chain, algorithm.placement)
            )
            lines.append(f"  alg{algorithm.label}: {loops}")
        return "\n".join(lines)

    def distributions_report(self) -> str:
        """Figure 1b: the execution-time distributions of the four splits."""
        return distribution_report(self.measurements.as_dict(), bins=24, width=40)

    def report(self) -> str:
        parts = [
            self.splits_report(),
            "",
            f"Figure 1b -- execution-time distributions (N={self.config.n_measurements}):",
            measurement_summary_table(self.measurements),
            "",
            self.distributions_report(),
            cluster_table(self.analysis.final, title="Clustering of the four splits"),
        ]
        return "\n".join(parts)


def run(config: Figure1Config | None = None) -> Figure1Result:
    """Run the Figure 1 experiment on the simulated CPU+GPU platform."""
    cfg = config or Figure1Config()
    platform = cpu_gpu_platform()
    executor = SimulatedExecutor(
        platform, noise=default_system_noise(cfg.noise_level), seed=cfg.seed
    )
    chain = figure1_chain()
    algorithms = enumerate_algorithms(chain, platform)
    # Routed through the batch execution engine (one vectorized pass over the
    # whole space, bit-for-bit identical to the per-placement loop).
    measurements = measure_algorithms(algorithms, executor, repetitions=cfg.n_measurements)
    analyzer = default_analyzer(
        seed=cfg.seed, repetitions=cfg.repetitions, n_measurements=cfg.n_measurements
    )
    analysis = analyzer.analyze(measurements)
    return Figure1Result(
        config=cfg,
        algorithms=tuple(algorithms),
        measurements=measurements,
        analysis=analysis,
    )
