"""Monte-Carlo fault injection: sample actual retry traces of one placement.

The statistical cross-check on the closed-form engine: every trial draws the
straggler/crash/dropout outcomes of each attempt from the same scalar
:class:`~repro.faults.models.FaultProfile` helpers the analytic tables are
built from, pays the same per-attempt costs (every attempt re-pays compute
and transfer; a timed-out attempt is killed after exactly ``timeout_s``
seconds; backoff delays add wall-clock between attempts), and finalizes
energy/cost through the shared cost model.  Conditional on success, the
sample mean of ``total_time_s`` converges to the analytic
``ExpectedFaultRecord.total_time_s``; the success rate converges to its
``success_probability``.

Sampling is chain-only: the analytic DAG path substitutes expected durations
into the critical-path recurrence (a deterministic-equivalent
approximation), so there is no exact per-trial trace it corresponds to --
the documented exactness boundary.

On exhausted retries the :class:`~repro.faults.retry.TimeoutPolicy` fallback
decides the trace: ``"host"`` re-runs the task on the host device (assumed
reliable -- graceful degradation keeps the record feasible and downstream
hops re-price from the host), ``"fail"`` stops the trace with the faulting
task and device named.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..devices.costmodel import finalize_execution, penalty_cost, task_device_cost
from ..devices.energy import EnergyBreakdown
from .models import FaultProfile
from .retry import RetryPolicy, TimeoutPolicy

if False:  # pragma: no cover - type-only imports
    from ..devices.platform import Platform
    from ..tasks.chain import TaskChain

__all__ = ["FaultSimulationRecord", "simulate_chain_with_faults", "summarize_fault_trials"]


@dataclass(frozen=True)
class FaultSimulationRecord:
    """One sampled execution trace of a placed chain under fault injection."""

    #: ``"ok"`` (every task ran where planned), ``"degraded"`` (at least one
    #: task fell back to the host) or ``"failed"`` (a task exhausted its
    #: retries with ``fallback="fail"``; accounting covers the partial run).
    status: str
    placement: tuple[str, ...]
    #: Where each task actually ran (host substituted on fallback; tasks
    #: after a failure keep their planned alias).
    effective_placement: tuple[str, ...]
    #: Attempts consumed per task (fallback re-runs not counted).
    attempts: tuple[int, ...]
    total_time_s: float
    busy_time_by_device: Mapping[str, float]
    flops_by_device: Mapping[str, float]
    transferred_bytes: float
    energy: EnergyBreakdown
    energy_total_j: float
    operating_cost: float
    failed_task: str | None = None
    failed_device: str | None = None
    degraded_tasks: tuple[str, ...] = ()

    @property
    def label(self) -> str:
        return "".join(self.placement)


def simulate_chain_with_faults(
    platform: "Platform",
    chain: "TaskChain",
    placement: Sequence[str],
    *,
    retry: RetryPolicy,
    faults: FaultProfile | None = None,
    timeout: TimeoutPolicy | None = None,
    rng: np.random.Generator,
) -> FaultSimulationRecord:
    """Sample one fault-injected execution of ``chain`` under ``placement``.

    ``placement`` is a sequence of device aliases, one per task (the
    sequential executor's spelling).  ``faults`` defaults to the platform's
    attached profile.
    """
    from .tables import resolve_fault_profile

    if not isinstance(retry, RetryPolicy):
        raise TypeError(f"retry must be a RetryPolicy, got {retry!r}")
    timeout = timeout if timeout is not None else TimeoutPolicy()
    profile = resolve_fault_profile(platform, faults)
    aliases = tuple(placement)
    if len(aliases) != len(chain):
        raise ValueError(
            f"placement {aliases!r} has {len(aliases)} entries but chain "
            f"{chain.name!r} has {len(chain)} tasks"
        )
    platform.validate_aliases(aliases)

    host = platform.host
    q = profile.straggler_probability
    sigma = profile.straggler_slowdown
    budget = timeout.timeout_s
    max_attempts = retry.max_attempts

    busy: dict[str, float] = {alias: 0.0 for alias in platform.devices}
    flops: dict[str, float] = {alias: 0.0 for alias in platform.devices}
    effective: list[str] = []
    attempts: list[int] = []
    degraded: list[str] = []
    transferred = 0.0
    transfer_energy = 0.0
    total_time = 0.0
    status = "ok"
    failed_task: str | None = None
    failed_device: str | None = None

    previous = host
    for task, cost in zip(chain.tasks, chain.costs()):
        alias = aliases[len(effective)] if len(effective) < len(aliases) else host
        device_cost = task_device_cost(platform, cost, alias)
        hop = penalty_cost(platform, previous, alias)
        busy_time = device_cost.busy_s
        transfer_time = device_cost.hostio_time_s + hop.time_s
        duration = busy_time + transfer_time
        task_bytes = device_cost.hostio_bytes + hop.n_bytes
        survival = profile.node_survival(
            alias, host, busy_time, cost.input_bytes, cost.output_bytes
        ) * profile.edge_survival(previous, alias)

        n_attempts = 0
        succeeded = False
        for attempt in range(1, max_attempts + 1):
            n_attempts = attempt
            straggles = q > 0.0 and rng.random() < q
            wall = duration * sigma if straggles else duration
            if wall > budget:
                # Killed at the budget: the attempt still occupied the device
                # and moved its bytes before the kill (same full-attempt
                # charging the analytic engine applies to failed attempts).
                wall = budget
                succeeded = False
            else:
                succeeded = rng.random() < survival
            total_time += wall
            busy[alias] += busy_time
            flops[alias] += cost.flops
            transferred += task_bytes
            transfer_energy += device_cost.energy_in_j
            transfer_energy += device_cost.energy_out_j
            transfer_energy += hop.energy_j
            if succeeded:
                break
            if attempt < max_attempts:
                total_time += retry.delay(attempt)
        attempts.append(n_attempts)

        if succeeded:
            effective.append(alias)
            previous = alias
            continue
        if timeout.fallback == "host" and alias != host:
            # Graceful degradation: one reliable re-run on the host (the
            # modelling choice documented in the module docstring).
            host_cost = task_device_cost(platform, cost, host)
            host_hop = penalty_cost(platform, previous, host)
            total_time += host_cost.busy_s + (host_cost.hostio_time_s + host_hop.time_s)
            busy[host] += host_cost.busy_s
            flops[host] += cost.flops
            transferred += host_cost.hostio_bytes + host_hop.n_bytes
            transfer_energy += host_cost.energy_in_j
            transfer_energy += host_cost.energy_out_j
            transfer_energy += host_hop.energy_j
            effective.append(host)
            degraded.append(task.name)
            previous = host
            status = "degraded"
            continue
        status = "failed"
        failed_task = task.name
        failed_device = alias
        effective.append(alias)
        break

    # Tasks never reached (after a failure) keep their planned alias.
    effective.extend(aliases[len(effective):])
    energy, cost_total = finalize_execution(platform, busy, total_time, transfer_energy)
    return FaultSimulationRecord(
        status=status,
        placement=aliases,
        effective_placement=tuple(effective),
        attempts=tuple(attempts),
        total_time_s=total_time,
        busy_time_by_device=busy,
        flops_by_device=flops,
        transferred_bytes=transferred,
        energy=energy,
        energy_total_j=energy.total_j,
        operating_cost=cost_total,
        failed_task=failed_task,
        failed_device=failed_device,
        degraded_tasks=tuple(degraded),
    )


def summarize_fault_trials(records: Sequence[FaultSimulationRecord]) -> dict:
    """Success/degraded/failed rates and success-conditional means of trials."""
    if not records:
        raise ValueError("at least one trial record is required")
    n = len(records)
    ok = [r for r in records if r.status == "ok"]
    summary = {
        "n_trials": n,
        "success_rate": len(ok) / n,
        "degraded_rate": sum(r.status == "degraded" for r in records) / n,
        "failure_rate": sum(r.status == "failed" for r in records) / n,
        "mean_time_ok_s": float(np.mean([r.total_time_s for r in ok])) if ok else float("nan"),
        "mean_energy_ok_j": float(np.mean([r.energy_total_j for r in ok])) if ok else float("nan"),
        "mean_attempts_ok": (
            float(np.mean([sum(r.attempts) for r in ok])) if ok else float("nan")
        ),
    }
    return summary
