"""Retry and timeout policies plus the truncated-geometric attempt algebra.

A :class:`RetryPolicy` grants each task up to ``max_attempts`` executions
with exponential backoff between them; every attempt re-pays the task's
compute and transfer time and energy.  With per-attempt failure probability
``p`` the attempt count of a task is truncated-geometric, and all expected
values have closed forms:

* ``P(success within A attempts) = 1 - p**A``
* ``E[attempts | success] = (1 - (A+1) p**A + A p**(A+1)) / ((1-p)(1-p**A))``
* ``E[backoff | success] = sum_j d_j (p**j - p**A) / (1 - p**A)`` where
  ``d_j`` is the delay after the ``j``-th failed attempt.

These are exactly the quantities the vectorized engine folds per task, and
the scalar functions below are written with the *same* elementary operation
sequence (powers by repeated multiplication, guarded divisions) so the two
agree bit for bit -- the property the differential tests pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Upper bound on ``max_attempts`` -- the closed forms loop A-1 times to
#: build ``p**A`` by repeated multiplication, so keep A civilised.
MAX_ATTEMPTS_LIMIT = 4096


def _require_finite_nonnegative(value: float, label: str) -> float:
    value = float(value)
    if math.isnan(value) or math.isinf(value) or value < 0.0:
        raise ValueError(f"{label} must be finite and >= 0, got {value!r}")
    return value


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with validated exponential backoff.

    ``max_attempts`` counts total executions, so ``max_attempts=1`` is the
    zero-retry policy.  The delay before attempt ``j+1`` (``j >= 1`` failures
    so far) is ``min(backoff_base_s * backoff_factor**(j-1), backoff_cap_s)``.
    """

    max_attempts: int = 1
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_cap_s: float = math.inf

    def __post_init__(self) -> None:
        attempts = self.max_attempts
        if not isinstance(attempts, int) or isinstance(attempts, bool):
            raise TypeError(f"max_attempts must be an int, got {attempts!r}")
        if not 1 <= attempts <= MAX_ATTEMPTS_LIMIT:
            raise ValueError(
                f"max_attempts must be in [1, {MAX_ATTEMPTS_LIMIT}], got {attempts}"
            )
        _require_finite_nonnegative(self.backoff_base_s, "backoff_base_s")
        factor = float(self.backoff_factor)
        if math.isnan(factor) or math.isinf(factor) or factor < 1.0:
            raise ValueError(f"backoff_factor must be finite and >= 1, got {factor!r}")
        cap = float(self.backoff_cap_s)
        if math.isnan(cap) or cap < 0.0:
            raise ValueError(f"backoff_cap_s must be >= 0 (inf allowed), got {cap!r}")

    def delay(self, failures: int) -> float:
        """Backoff delay inserted after the ``failures``-th failed attempt."""
        if failures < 1:
            raise ValueError(f"delay() is defined for failures >= 1, got {failures}")
        scale = 1.0
        for _ in range(failures - 1):
            scale = scale * self.backoff_factor
        return min(self.backoff_base_s * scale, self.backoff_cap_s)

    def delays(self) -> tuple[float, ...]:
        """The ``max_attempts - 1`` inter-attempt delays."""
        return tuple(self.delay(j) for j in range(1, self.max_attempts))


@dataclass(frozen=True)
class TimeoutPolicy:
    """Per-attempt wall-clock budget plus the degradation mode on exhaustion.

    An attempt whose (possibly straggler-inflated) duration exceeds
    ``timeout_s`` is killed after exactly ``timeout_s`` seconds and counts as
    a failure.  When every attempt of a task fails, ``fallback`` decides the
    Monte-Carlo outcome: ``"host"`` re-runs the task on the host device
    (degraded but feasible), ``"fail"`` marks the record failed, naming the
    faulting task and device.  The analytic engine always reports the
    conditional-on-success expectation together with the success probability.
    """

    timeout_s: float = math.inf
    fallback: str = "fail"

    def __post_init__(self) -> None:
        timeout = float(self.timeout_s)
        if math.isnan(timeout) or timeout <= 0.0:
            raise ValueError(f"timeout_s must be > 0 (inf allowed), got {timeout!r}")
        if self.fallback not in ("fail", "host"):
            raise ValueError(
                f"fallback must be 'fail' or 'host', got {self.fallback!r}"
            )


def expected_attempts(p_fail: float, max_attempts: int) -> tuple[float, float]:
    """``(P(success), E[attempts | success])`` for ``max_attempts`` tries.

    ``E[attempts | success]`` is reported as ``1.0`` when success is
    impossible (``p_fail == 1``) so callers can scale per-attempt costs
    without manufacturing ``0 * inf``; the success probability of ``0.0``
    is the signal that the task cannot complete.
    """
    p = float(p_fail)
    if math.isnan(p) or not 0.0 <= p <= 1.0:
        raise ValueError(f"p_fail must be a probability in [0, 1], got {p!r}")
    a = int(max_attempts)
    if a < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    p_a = p
    for _ in range(a - 1):
        p_a = p_a * p
    success = 1.0 - p_a
    if a == 1 or p >= 1.0:
        # A successful single-attempt task always took exactly one attempt;
        # the general formula only reaches 1.0 up to rounding.
        attempts = 1.0
    else:
        numerator = 1.0 - (a + 1.0) * p_a + a * p_a * p
        denominator = (1.0 - p) * success
        attempts = numerator / denominator
    return success, attempts


def expected_backoff(p_fail: float, policy: RetryPolicy) -> float:
    """``E[total backoff delay | success]`` under ``policy``.

    Zero when success is impossible (the guarded branch the vectorized
    engine takes as well).
    """
    p = float(p_fail)
    if math.isnan(p) or not 0.0 <= p <= 1.0:
        raise ValueError(f"p_fail must be a probability in [0, 1], got {p!r}")
    a = policy.max_attempts
    p_a = p
    for _ in range(a - 1):
        p_a = p_a * p
    success = 1.0 - p_a
    if success <= 0.0:
        return 0.0
    total = 0.0
    p_j = p
    for j in range(1, a):
        total = total + policy.delay(j) * (p_j - p_a)
        p_j = p_j * p
    return total / success
