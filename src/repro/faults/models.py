"""Fault models: device failures, link dropouts and stragglers.

This module is deliberately free of any :mod:`repro` import so it can sit
below :mod:`repro.devices` in the import graph -- a
:class:`~repro.devices.Platform` carries an optional :class:`FaultProfile`
without creating a cycle.

The models are *per-attempt* descriptions:

* :class:`DeviceFailure` -- probability that a single execution attempt of a
  task on a device crashes.  With ``load_scaled=True`` the rate is a failure
  intensity per busy-second and the per-attempt probability becomes
  ``1 - exp(-rate * busy_s)``, so long kernels fail more often than short
  ones on the same flaky device.
* :class:`LinkDropout` -- probability that a single transfer over a link is
  dropped (each host round-trip half and each device-to-device penalty hop
  counts as one transfer).
* :class:`StragglerModel` -- probability that an attempt runs ``slowdown``
  times longer than nominal (tail latency inflation); the device is not
  busy for the extra time, it is *waiting*, so stragglers cost wall-clock
  time and idle energy but no additional active energy.

A :class:`FaultProfile` composes the three and provides the scalar survival
helpers shared by the vectorized table builder, the sequential reference
executor and the Monte-Carlo sampler -- one definition, three consumers, so
the differential tests pin a single source of truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping


def _require_probability(value: float, label: str) -> float:
    value = float(value)
    if math.isnan(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{label} must be a probability in [0, 1], got {value!r}")
    return value


def _require_rate(value: float, label: str) -> float:
    value = float(value)
    if math.isnan(value) or value < 0.0 or math.isinf(value):
        raise ValueError(f"{label} must be a finite non-negative rate, got {value!r}")
    return value


def _normalise_device_rates(
    rates: Mapping[str, float] | Iterable[tuple[str, float]],
) -> tuple[tuple[str, float], ...]:
    pairs = rates.items() if isinstance(rates, Mapping) else rates
    return tuple(sorted((str(alias), float(value)) for alias, value in pairs))


def _normalise_link_rates(
    rates: Mapping[tuple[str, str], float] | Iterable[tuple[tuple[str, str], float]],
) -> tuple[tuple[tuple[str, str], float], ...]:
    pairs = rates.items() if isinstance(rates, Mapping) else rates
    normalised = {}
    for (a, b), value in pairs:
        key = tuple(sorted((str(a), str(b))))
        normalised[key] = float(value)
    return tuple(sorted(normalised.items()))


@dataclass(frozen=True)
class DeviceFailure:
    """Per-attempt crash probability of task executions, per device.

    ``rate`` is the default applied to every device; ``rates`` overrides it
    per alias.  With ``load_scaled=True`` both are failure intensities per
    busy-second instead of plain probabilities.
    """

    rate: float = 0.0
    rates: tuple[tuple[str, float], ...] = ()
    load_scaled: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "rates", _normalise_device_rates(self.rates))
        check = _require_rate if self.load_scaled else _require_probability
        check(self.rate, "DeviceFailure.rate")
        for alias, value in self.rates:
            check(value, f"DeviceFailure.rates[{alias!r}]")

    def probability(self, alias: str, busy_s: float) -> float:
        """Probability that one attempt of a ``busy_s``-long task on ``alias`` crashes."""
        rate = dict(self.rates).get(alias, self.rate)
        if self.load_scaled:
            return -math.expm1(-rate * busy_s)
        return rate

    def aliases(self) -> tuple[str, ...]:
        return tuple(alias for alias, _ in self.rates)


@dataclass(frozen=True)
class LinkDropout:
    """Per-transfer drop probability, per (unordered) device pair.

    ``rate`` is the default for every link; ``rates`` overrides it per pair.
    A dropped transfer kills the whole attempt -- the retry re-pays every
    transfer and the compute.
    """

    rate: float = 0.0
    rates: tuple[tuple[tuple[str, str], float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rates", _normalise_link_rates(self.rates))
        _require_probability(self.rate, "LinkDropout.rate")
        for pair, value in self.rates:
            _require_probability(value, f"LinkDropout.rates[{pair!r}]")

    def probability(self, a: str, b: str) -> float:
        """Drop probability of one transfer between ``a`` and ``b``."""
        if a == b:
            return 0.0
        key = tuple(sorted((a, b)))
        return dict(self.rates).get(key, self.rate)

    def aliases(self) -> tuple[str, ...]:
        return tuple(sorted({alias for pair, _ in self.rates for alias in pair}))


@dataclass(frozen=True)
class StragglerModel:
    """Tail latency inflation: with ``probability`` an attempt takes ``slowdown``x."""

    probability: float = 0.0
    slowdown: float = 1.0

    def __post_init__(self) -> None:
        _require_probability(self.probability, "StragglerModel.probability")
        slowdown = float(self.slowdown)
        if math.isnan(slowdown) or math.isinf(slowdown) or slowdown < 1.0:
            raise ValueError(
                f"StragglerModel.slowdown must be a finite factor >= 1, got {slowdown!r}"
            )


@dataclass(frozen=True)
class FaultProfile:
    """Composable fault description attachable to a platform.

    The default profile (all components ``None``) models a fault-free world;
    evaluating it under any retry policy reproduces the classic cost model
    bit for bit.
    """

    device_failure: DeviceFailure | None = None
    link_dropout: LinkDropout | None = None
    straggler: StragglerModel | None = None

    def __post_init__(self) -> None:
        if self.device_failure is not None and not isinstance(self.device_failure, DeviceFailure):
            raise TypeError(f"device_failure must be a DeviceFailure, got {self.device_failure!r}")
        if self.link_dropout is not None and not isinstance(self.link_dropout, LinkDropout):
            raise TypeError(f"link_dropout must be a LinkDropout, got {self.link_dropout!r}")
        if self.straggler is not None and not isinstance(self.straggler, StragglerModel):
            raise TypeError(f"straggler must be a StragglerModel, got {self.straggler!r}")

    # -- scalar helpers (single source of truth for all three engines) ------

    def device_failure_probability(self, alias: str, busy_s: float) -> float:
        if self.device_failure is None:
            return 0.0
        return self.device_failure.probability(alias, busy_s)

    def link_dropout_probability(self, a: str, b: str) -> float:
        if self.link_dropout is None:
            return 0.0
        return self.link_dropout.probability(a, b)

    @property
    def straggler_probability(self) -> float:
        return 0.0 if self.straggler is None else self.straggler.probability

    @property
    def straggler_slowdown(self) -> float:
        return 1.0 if self.straggler is None else self.straggler.slowdown

    def node_survival(
        self, alias: str, host: str, busy_s: float, input_bytes: float, output_bytes: float
    ) -> float:
        """Survival of one attempt of a task on ``alias`` including its host I/O.

        The device must not crash and, off host, each nonzero host round-trip
        half (input download, output upload) must not be dropped.  Folded by
        repeated multiplication so the vectorized tables are bitwise products
        of exactly these factors.
        """
        survival = 1.0 - self.device_failure_probability(alias, busy_s)
        if alias != host:
            drop = self.link_dropout_probability(host, alias)
            if input_bytes > 0.0:
                survival = survival * (1.0 - drop)
            if output_bytes > 0.0:
                survival = survival * (1.0 - drop)
        return survival

    def edge_survival(self, src: str, dst: str) -> float:
        """Survival of the device-to-device penalty hop from ``src`` to ``dst``."""
        if src == dst:
            return 1.0
        return 1.0 - self.link_dropout_probability(src, dst)

    def referenced_aliases(self) -> tuple[str, ...]:
        """Every alias the profile names explicitly (for platform validation)."""
        aliases: set[str] = set()
        if self.device_failure is not None:
            aliases.update(self.device_failure.aliases())
        if self.link_dropout is not None:
            aliases.update(self.link_dropout.aliases())
        return tuple(sorted(aliases))

    def validate_aliases(self, known: Iterable[str]) -> None:
        """Raise if the profile names a device the platform does not have."""
        known_set = set(known)
        unknown = sorted(set(self.referenced_aliases()) - known_set)
        if unknown:
            raise KeyError(
                f"fault profile references unknown device aliases {unknown}; "
                f"available: {sorted(known_set)}"
            )
