"""Fault-tolerant execution: failure models, retry semantics, resilient plans.

The subsystem threads device crashes, link dropouts and stragglers through
the whole evaluation stack:

* :mod:`repro.faults.models` -- composable failure models
  (:class:`DeviceFailure`, :class:`LinkDropout`, :class:`StragglerModel`)
  bundled into a :class:`FaultProfile` attachable to a
  :class:`~repro.devices.platform.Platform`.
* :mod:`repro.faults.retry` -- :class:`RetryPolicy` (bounded attempts,
  validated exponential backoff) and :class:`TimeoutPolicy` (per-attempt
  budget, host fallback), plus the truncated-geometric closed forms.
* :mod:`repro.faults.tables` / :mod:`repro.faults.engine` -- fault-augmented
  cost tables and the vectorized expected-cost-under-faults engines for
  placement batches and scenario grids, pinned bitwise against the
  sequential :func:`expected_record` reference.
* :mod:`repro.faults.simulate` -- Monte-Carlo fault injection, the
  statistical cross-check on the closed forms.
* :mod:`repro.faults.planning` -- :func:`plan_with_fallback`: a primary
  placement plus a verified backup per non-host device.
"""

from .engine import (
    ExpectedFaultRecord,
    ExpectedTaskFaults,
    FaultBatchExecutionResult,
    FaultGridExecutionResult,
    execute_fault_placements,
    execute_fault_placements_grid,
    expected_record,
)
from .models import DeviceFailure, FaultProfile, LinkDropout, StragglerModel
from .planning import DevicePlan, FallbackPlan, plan_with_fallback
from .retry import (
    RetryPolicy,
    TimeoutPolicy,
    expected_attempts,
    expected_backoff,
)
from .simulate import (
    FaultSimulationRecord,
    simulate_chain_with_faults,
    summarize_fault_trials,
)
from .tables import (
    FaultChainCostTables,
    FaultGridCostTables,
    build_fault_grid_tables,
    build_fault_tables,
    resolve_fault_profile,
)

__all__ = [
    "DeviceFailure",
    "LinkDropout",
    "StragglerModel",
    "FaultProfile",
    "RetryPolicy",
    "TimeoutPolicy",
    "expected_attempts",
    "expected_backoff",
    "FaultChainCostTables",
    "FaultGridCostTables",
    "build_fault_tables",
    "build_fault_grid_tables",
    "resolve_fault_profile",
    "ExpectedTaskFaults",
    "ExpectedFaultRecord",
    "FaultBatchExecutionResult",
    "FaultGridExecutionResult",
    "execute_fault_placements",
    "execute_fault_placements_grid",
    "expected_record",
    "FaultSimulationRecord",
    "simulate_chain_with_faults",
    "summarize_fault_trials",
    "DevicePlan",
    "FallbackPlan",
    "plan_with_fallback",
]
