"""Fault-augmented cost tables: survival factors precomputed per table entry.

A :class:`FaultChainCostTables` wraps the classic
:class:`~repro.devices.batch.ChainCostTables` (or
:class:`~repro.devices.batch.GraphCostTables`) with everything the
expected-cost-under-faults engine needs per attempt:

* ``node_survival[t, d]`` -- probability that one attempt of task ``t`` on
  device ``d`` survives its device-crash risk and its host I/O transfers,
* ``edge_survival[src, dst]`` -- survival of the device-to-device penalty
  hop (``1.0`` on the diagonal: staying put sends nothing),
* ``first_edge_survival[d]`` -- survival of the host feed into a chain's
  first task (or a graph source).

Each entry is produced by the *scalar* helpers on
:class:`~repro.faults.models.FaultProfile` -- the same calls the sequential
reference and the Monte-Carlo sampler make -- so the vectorized engine is
bitwise pinned by construction, exactly like the base tables are pinned to
the scalar cost model.

:class:`FaultGridCostTables` stacks per-scenario survival tables over a
:class:`~repro.devices.grid.GridCostTables`, one fault profile per scenario
platform (drawn from ``platform.faults`` unless an explicit profile is
given), for failure-regime sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..devices.batch import ChainCostTables, GraphCostTables, build_cost_tables
from ..devices.grid import GraphGridCostTables, GridCostTables, build_grid_tables
from ..devices.tables import build_tables
from .models import FaultProfile
from .retry import RetryPolicy, TimeoutPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..devices.platform import Platform
    from ..tasks.chain import TaskChain
    from ..tasks.graph import TaskGraph

__all__ = [
    "FaultChainCostTables",
    "FaultGridCostTables",
    "build_fault_tables",
    "build_fault_grid_tables",
    "resolve_fault_profile",
]


def resolve_fault_profile(platform: "Platform", profile: FaultProfile | None) -> FaultProfile:
    """The profile to evaluate under: explicit > platform-attached > fault-free."""
    if profile is not None:
        if not isinstance(profile, FaultProfile):
            raise TypeError(f"faults must be a FaultProfile or None, got {profile!r}")
        profile.validate_aliases(platform.devices)
        return profile
    return platform.faults if platform.faults is not None else FaultProfile()


def _survival_tables(
    base: ChainCostTables,
    profile: FaultProfile,
    costs: Sequence,
    busy: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Survival arrays for one scenario slice (``busy`` is ``(k, m)``)."""
    host = base.platform.host
    aliases = base.aliases
    k, m = busy.shape
    node = np.empty((k, m))
    for t, cost in enumerate(costs):
        for d, alias in enumerate(aliases):
            node[t, d] = profile.node_survival(
                alias, host, float(busy[t, d]), cost.input_bytes, cost.output_bytes
            )
    edge = np.empty((m, m))
    for i, a in enumerate(aliases):
        for j, b in enumerate(aliases):
            edge[i, j] = profile.edge_survival(a, b)
    first_edge = np.array([profile.edge_survival(host, alias) for alias in aliases])
    return node, edge, first_edge


@dataclass(frozen=True)
class FaultChainCostTables:
    """Classic cost tables plus per-attempt survival factors and policies.

    Carries the retry/timeout semantics alongside the probabilities so one
    object fully determines the expected-cost evaluation; the executor caches
    it keyed by (devices, profile, retry, timeout) exactly like the base
    tables are cached by devices.
    """

    base: ChainCostTables
    profile: FaultProfile
    retry: RetryPolicy
    timeout: TimeoutPolicy
    node_survival: np.ndarray  # (k, m)
    edge_survival: np.ndarray  # (m, m)
    first_edge_survival: np.ndarray  # (m,)
    #: Content fingerprint of the build configuration (see
    #: :func:`repro.devices.tables.build_tables`); empty for hand-built tables.
    fingerprint: str = ""

    def execute(self, placements: np.ndarray):
        """Evaluate a placement batch under faults (protocol entry)."""
        from .engine import execute_fault_placements

        return execute_fault_placements(self, placements)

    @property
    def is_graph(self) -> bool:
        return isinstance(self.base, GraphCostTables)

    @property
    def n_tasks(self) -> int:
        return self.base.n_tasks

    @property
    def n_devices(self) -> int:
        return self.base.n_devices

    @property
    def aliases(self) -> tuple[str, ...]:
        return self.base.aliases

    @property
    def platform(self) -> "Platform":
        return self.base.platform

    @property
    def task_names(self) -> tuple[str, ...]:
        return self.base.task_names

    @property
    def workload(self) -> str:
        return self.base.workload


def build_fault_tables(
    workload: "TaskChain | TaskGraph",
    platform: "Platform",
    devices: Sequence[str] | None = None,
    *,
    retry: RetryPolicy,
    faults: FaultProfile | None = None,
    timeout: TimeoutPolicy | None = None,
) -> FaultChainCostTables:
    """Build fault-augmented tables of a workload on a platform.

    ``faults`` defaults to the platform's attached profile (or the fault-free
    profile if it has none); ``timeout`` defaults to no per-attempt budget.
    Thin shim over :func:`repro.devices.tables.build_tables`, the single
    construction path for every table family.
    """
    return build_tables(
        workload, platform, devices=devices, faults=faults, retry=retry, timeout=timeout
    )


def _check_policies(retry: RetryPolicy, timeout: TimeoutPolicy | None) -> TimeoutPolicy:
    if not isinstance(retry, RetryPolicy):
        raise TypeError(f"retry must be a RetryPolicy, got {retry!r}")
    if timeout is None:
        return TimeoutPolicy()
    if not isinstance(timeout, TimeoutPolicy):
        raise TypeError(f"timeout must be a TimeoutPolicy or None, got {timeout!r}")
    return timeout


def _build_fault_tables(
    workload: "TaskChain | TaskGraph",
    platform: "Platform",
    devices: Sequence[str] | None = None,
    *,
    retry: RetryPolicy,
    faults: FaultProfile | None = None,
    timeout: TimeoutPolicy | None = None,
) -> FaultChainCostTables:
    """The fault-table builder behind :func:`build_fault_tables`."""
    timeout = _check_policies(retry, timeout)
    profile = resolve_fault_profile(platform, faults)
    base = build_cost_tables(workload, platform, devices)
    node, edge, first_edge = _survival_tables(base, profile, workload.costs(), base.busy)
    return FaultChainCostTables(
        base=base,
        profile=profile,
        retry=retry,
        timeout=timeout,
        node_survival=node,
        edge_survival=edge,
        first_edge_survival=first_edge,
    )


@dataclass(frozen=True)
class FaultGridCostTables:
    """Condition-stacked fault tables: one profile and survival slice per scenario.

    ``table(i)`` slices out one scenario's :class:`FaultChainCostTables`,
    bitwise identical to :func:`build_fault_tables` on that scenario's
    platform -- the same slicing guarantee the base grid gives.
    """

    base: GridCostTables
    profiles: tuple[FaultProfile, ...]
    retry: RetryPolicy
    timeout: TimeoutPolicy
    node_survival: np.ndarray  # (s, k, m)
    edge_survival: np.ndarray  # (s, m, m)
    first_edge_survival: np.ndarray  # (s, m)
    #: Content fingerprint of the build configuration (see
    #: :func:`repro.devices.tables.build_tables`); empty for hand-built tables.
    fingerprint: str = ""

    def execute(self, placements: np.ndarray):
        """Evaluate a placement batch under every condition and fault profile."""
        from .engine import execute_fault_placements_grid

        return execute_fault_placements_grid(self, placements)

    @property
    def is_graph(self) -> bool:
        return isinstance(self.base, GraphGridCostTables)

    @property
    def n_scenarios(self) -> int:
        return self.base.n_scenarios

    @property
    def n_tasks(self) -> int:
        return self.base.n_tasks

    @property
    def n_devices(self) -> int:
        return self.base.n_devices

    @property
    def aliases(self) -> tuple[str, ...]:
        return self.base.aliases

    @property
    def workload(self) -> str:
        return self.base.workload

    def cache_stats(self):
        """Slice provenance of the underlying grid build (see
        :meth:`~repro.devices.grid.GridCostTables.cache_stats`)."""
        return self.base.cache_stats()

    def table(self, index: int) -> FaultChainCostTables:
        """One scenario's fault tables (bitwise identical to a direct build);
        negative indices count from the end."""
        index = self.base._scenario_index(index)
        return FaultChainCostTables(
            base=self.base.table(index),
            profile=self.profiles[index],
            retry=self.retry,
            timeout=self.timeout,
            node_survival=self.node_survival[index],
            edge_survival=self.edge_survival[index],
            first_edge_survival=self.first_edge_survival[index],
            fingerprint=f"{self.fingerprint}#scenario{index}" if self.fingerprint else "",
        )


def build_fault_grid_tables(
    workload: "TaskChain | TaskGraph",
    platforms: Sequence["Platform"],
    devices: Sequence[str] | None = None,
    *,
    retry: RetryPolicy,
    faults: FaultProfile | None = None,
    timeout: TimeoutPolicy | None = None,
) -> FaultGridCostTables:
    """Fault-augmented grid tables over scenario platforms.

    With ``faults=None`` each scenario evaluates under its own platform's
    attached profile -- the shape produced by the failure-regime condition
    axes -- so a single grid sweep spans fault regimes the same way it spans
    link or clock drift.

    Thin shim over :func:`repro.devices.tables.build_tables`, the single
    construction path for every table family.
    """
    return build_tables(
        workload, platforms, devices=devices, faults=faults, retry=retry, timeout=timeout
    )


def _build_fault_grid_tables(
    workload: "TaskChain | TaskGraph",
    platforms: "Sequence[Platform] | None",
    devices: Sequence[str] | None = None,
    *,
    retry: RetryPolicy,
    faults: FaultProfile | None = None,
    timeout: TimeoutPolicy | None = None,
    platform: "Platform | None" = None,
    scenarios=None,
    slice_cache=None,
) -> FaultGridCostTables:
    """The fault-grid builder behind :func:`build_fault_grid_tables`.

    Given ``platform`` + ``scenarios`` (the fused form), the base grid routes
    through the array-space builder and per-scenario platforms are derived
    lazily, only for fault-profile resolution; otherwise ``platforms`` is the
    classic pre-derived sequence.
    """
    timeout = _check_policies(retry, timeout)
    if scenarios is not None:
        base = build_tables(
            workload, platform, devices=devices, scenarios=scenarios, slice_cache=slice_cache
        )
    else:
        base = build_grid_tables(workload, platforms, devices)
    profiles = tuple(resolve_fault_profile(platform, faults) for platform in base.platforms)
    costs = workload.costs()
    s = base.n_scenarios
    node = np.empty((s, base.n_tasks, base.n_devices))
    edge = np.empty((s, base.n_devices, base.n_devices))
    first_edge = np.empty((s, base.n_devices))
    for i in range(s):
        node[i], edge[i], first_edge[i] = _survival_tables(
            base.table(i), profiles[i], costs, base.busy[i]
        )
    return FaultGridCostTables(
        base=base,
        profiles=profiles,
        retry=retry,
        timeout=timeout,
        node_survival=node,
        edge_survival=edge,
        first_edge_survival=first_edge,
    )
