"""Vectorized expected-cost-under-faults engine plus its sequential reference.

Per task and attempt, three things can go wrong: the device crashes or a
transfer drops (per-attempt survival ``surv`` from the fault tables), the
attempt straggles (probability ``q``, duration inflated by ``sigma``), or it
overruns the per-attempt timeout ``c`` and is killed after exactly ``c``
seconds.  With bounded retries the attempt count is truncated-geometric and
every expectation below is closed-form -- no sampling.  Three regimes per
``(placement, task)`` element, selected by nested ``np.where`` in the
vectorized engine and by the *same* ``if/elif/else`` in the scalar reference:

1. ``dur > c``: even a nominal attempt overruns -- every attempt fails at
   ``c`` and the task can never succeed (success probability 0).
2. ``dur <= c < sigma * dur`` (and ``q > 0``): stragglers are killed at
   ``c``, non-stragglers fail only by fault; a success always takes ``dur``.
3. otherwise: stragglers finish within budget, so both failed and successful
   attempts last ``dur * (1 + q (sigma - 1))`` in expectation.

All reported costs are **conditional on success within the retry budget**:
the expected attempt count ``E[N | success]`` scales the re-paid busy time,
transfer energy and bytes; backoff delays add wall-clock (and hence idle
energy) only.  Straggler inflation is waiting, not computing: it stretches
wall-clock and idle energy but never the device's busy seconds or active
energy.  Where success is impossible the time/energy/cost metrics are
``inf`` and the success probability is exactly ``0.0``.

The scalar helpers below perform the identical IEEE-754 operation sequence
(powers by repeated multiplication, the same guarded divisions), so
:func:`execute_fault_placements` is pinned bitwise by
:func:`expected_record` -- and with an empty profile, no timeout and any
retry policy, both collapse to the classic fault-free engine bit for bit.

For chains the expected total time is exact (expectation of a sum).  For
DAGs the engine substitutes each task's *expected* duration into the
critical-path recurrence -- a deterministic-equivalent approximation, since
``E[max] >= max(E)``; the documented exactness boundary.  The Monte-Carlo
sampler (:mod:`repro.faults.simulate`) is the statistical cross-check on
chains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..devices.batch import (
    BatchExecutionResult,
    GraphCostTables,
    _finalize_placements,
    _raise_graph_missing_link,
    as_placement_matrix,
    placement_labels,
)
from ..devices.costmodel import finalize_execution
from ..devices.energy import EnergyBreakdown
from ..devices.grid import GridExecutionResult, _finalize_grid
from .retry import RetryPolicy, expected_attempts, expected_backoff
from .tables import FaultChainCostTables, FaultGridCostTables

__all__ = [
    "ExpectedTaskFaults",
    "ExpectedFaultRecord",
    "FaultBatchExecutionResult",
    "FaultGridExecutionResult",
    "execute_fault_placements",
    "execute_fault_placements_grid",
    "expected_record",
]


# ---------------------------------------------------------------------------
# Per-task attempt statistics (vectorized and scalar twins)
# ---------------------------------------------------------------------------

def _attempt_statistics(dur, surv, q, sigma, c, cfin, retry: RetryPolicy):
    """Vectorized per-task retry statistics.

    ``dur``/``surv`` are arrays (placement axis, optionally with a leading
    scenario axis); ``q``/``sigma`` are floats or ``(s, 1)`` columns; ``c``
    is the timeout (``cfin`` its finite stand-in, used only in expressions
    whose lanes are never selected when ``c`` is infinite).  Returns
    ``(succ, n_succ, task_time)``: per-task success probability, guarded
    ``E[attempts | success]`` (exactly ``1.0`` where success is impossible,
    so energy scaling never manufactures ``0 * inf``), and the expected
    task time contribution (``inf`` where success is impossible).
    """
    strag = 1.0 + q * (sigma - 1.0)
    base_over = dur > c
    slow_over = (~base_over) & (q > 0.0) & (sigma * dur > c)
    p_plain = 1.0 - surv
    e_plain = dur * strag
    p_kill = 1.0 - (1.0 - q) * surv
    kill_pos = p_kill > 0.0
    e_fail_kill = (q * cfin + (1.0 - q) * (p_plain * dur)) / np.where(kill_pos, p_kill, 1.0)

    p = np.where(base_over, 1.0, np.where(slow_over, p_kill, p_plain))
    e_fail = np.where(base_over, cfin, np.where(slow_over, e_fail_kill, e_plain))
    e_succ = np.where(base_over, 0.0, np.where(slow_over, dur, e_plain))

    a = retry.max_attempts
    p_a = p
    for _ in range(a - 1):
        p_a = p_a * p
    succ = 1.0 - p_a
    ok = p < 1.0
    if a == 1:
        n_succ = np.ones_like(p)
        backoff = np.zeros_like(p)
    else:
        numerator = 1.0 - (a + 1.0) * p_a + a * p_a * p
        denominator = (1.0 - p) * succ
        n_succ = np.where(ok, numerator / np.where(ok, denominator, 1.0), 1.0)
        bk = np.zeros_like(p)
        p_j = p
        for delay in retry.delays():
            bk = bk + delay * (p_j - p_a)
            p_j = p_j * p
        backoff = np.where(ok, bk / np.where(ok, succ, 1.0), 0.0)
    nf = n_succ - 1.0
    task_time = np.where(ok, (nf * e_fail + e_succ) + backoff, np.inf)
    return succ, n_succ, task_time


def _scalar_attempt_statistics(
    dur: float, surv: float, q: float, sigma: float, c: float, cfin: float, retry: RetryPolicy
) -> tuple[float, float, float]:
    """Scalar twin of :func:`_attempt_statistics` (same operation sequence)."""
    strag = 1.0 + q * (sigma - 1.0)
    base_over = dur > c
    slow_over = (not base_over) and (q > 0.0) and (sigma * dur > c)
    p_plain = 1.0 - surv
    e_plain = dur * strag
    if base_over:
        p = 1.0
        e_fail = cfin
        e_succ = 0.0
    elif slow_over:
        p_kill = 1.0 - (1.0 - q) * surv
        p = p_kill
        e_fail = (q * cfin + (1.0 - q) * (p_plain * dur)) / p_kill
        e_succ = dur
    else:
        p = p_plain
        e_fail = e_plain
        e_succ = e_plain
    succ, n_succ = expected_attempts(p, retry.max_attempts)
    backoff = expected_backoff(p, retry)
    nf = n_succ - 1.0
    task_time = ((nf * e_fail + e_succ) + backoff) if p < 1.0 else math.inf
    return succ, n_succ, task_time


# ---------------------------------------------------------------------------
# Result containers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExpectedTaskFaults:
    """Per-task slice of an expected-cost-under-faults evaluation."""

    task_name: str
    device: str
    #: Probability the task completes within its retry budget.
    success_probability: float
    #: ``E[attempts | success]`` (``1.0`` when success is impossible).
    expected_attempts: float
    #: Expected wall-clock contribution (``inf`` when success is impossible).
    expected_time_s: float


@dataclass(frozen=True)
class ExpectedFaultRecord:
    """Expected execution accounting of one placement under a fault profile.

    The fault-aware analogue of
    :class:`~repro.devices.simulator.ExecutionRecord`: all costs are
    conditional on every task succeeding within its retry budget;
    ``success_probability`` is the chance of that happening.  When some task
    cannot succeed at all, ``total_time_s``/``energy_total_j``/
    ``operating_cost`` are ``inf`` and ``success_probability`` is ``0.0``
    (the per-device and breakdown fields then hold the guarded finite
    accounting that fed the finalizer).
    """

    placement: tuple[str, ...]
    tasks: tuple[ExpectedTaskFaults, ...]
    success_probability: float
    expected_attempts: float
    total_time_s: float
    busy_time_by_device: Mapping[str, float]
    flops_by_device: Mapping[str, float]
    transferred_bytes: float
    energy: EnergyBreakdown
    energy_total_j: float
    operating_cost: float

    @property
    def label(self) -> str:
        return "".join(self.placement)

    def metric_value(self, metric: str = "time") -> float:
        if metric == "time":
            return self.total_time_s
        if metric == "energy":
            return self.energy_total_j
        if metric == "cost":
            return self.operating_cost
        raise ValueError(f"unknown metric {metric!r}; choose 'time', 'energy' or 'cost'")


@dataclass(frozen=True)
class FaultBatchExecutionResult(BatchExecutionResult):
    """A :class:`~repro.devices.batch.BatchExecutionResult` under faults.

    ``total_time_s``/``energy_total_j``/``operating_cost`` are expectations
    conditional on success (``inf`` where success is impossible), so every
    downstream consumer -- selectors, constraints, robust objectives --
    works unchanged while ``success_probability`` adds the resilience axis.
    """

    fault_tables: FaultChainCostTables | None = None
    #: Per placement, probability that every task succeeds within its budget.
    success_probability: np.ndarray | None = None
    #: Per placement, sum over tasks of ``E[attempts | success]``.
    expected_attempts: np.ndarray | None = None

    def record(self, index: int) -> ExpectedFaultRecord:
        """Materialise the scalar expected record of one placement.

        Replays the sequential fault-aware accumulation, bitwise identical
        to the vectorized arrays (the fault analogue of the classic
        ``record`` contract).
        """
        return expected_record(self.fault_tables, self.placements[index])


@dataclass(frozen=True)
class FaultGridExecutionResult(GridExecutionResult):
    """A :class:`~repro.devices.grid.GridExecutionResult` under faults.

    Unlike the classic grid, ``transferred_bytes`` (``(s, n)``) and
    ``flops_by_device`` (``(s, n, m)``) carry a scenario axis: expected
    attempt counts -- and with them the re-paid bytes and FLOPs -- differ
    per fault regime.
    """

    fault_tables: FaultGridCostTables | None = None
    success_probability: np.ndarray | None = None  # (s, n)
    expected_attempts: np.ndarray | None = None  # (s, n)
    #: Eager (s, n, m) energy breakdowns: unlike the classic grid result
    #: (which derives them lazily from its stored totals), the fault engine's
    #: breakdowns come from the pre-masked expected times -- rows where
    #: success is impossible idle for 0.0 seconds, not for ``inf``.
    active_j: np.ndarray | None = None
    idle_j: np.ndarray | None = None

    def batch(self, index: int) -> FaultBatchExecutionResult:
        """One scenario's fault batch view (bitwise equal to a direct run)."""
        return FaultBatchExecutionResult(
            tables=self.tables.table(index),
            placements=self.placements,
            total_time_s=self.total_time_s[index],
            busy_by_device=self.busy_by_device[index],
            flops_by_device=self.flops_by_device[index],
            transferred_bytes=self.transferred_bytes[index],
            transfer_energy_j=self.transfer_energy_j[index],
            active_j=self.active_j[index],
            idle_j=self.idle_j[index],
            energy_total_j=self.energy_total_j[index],
            operating_cost=self.operating_cost[index],
            fault_tables=self.fault_tables.table(index),
            success_probability=self.success_probability[index],
            expected_attempts=self.expected_attempts[index],
        )


# ---------------------------------------------------------------------------
# Vectorized engines
# ---------------------------------------------------------------------------

def execute_fault_placements(
    tables: FaultChainCostTables, placements: np.ndarray
) -> FaultBatchExecutionResult:
    """Expected cost of every placement under the fault profile, in one pass.

    The fault-aware analogue of
    :func:`~repro.devices.batch.execute_placements`: identical gathers and
    left folds, with each task's contribution replaced by its closed-form
    retry expectation.  Graph tables route through the deterministic-
    equivalent critical-path recurrence.
    """
    base = tables.base
    P = as_placement_matrix(placements, base.aliases, base.n_tasks, workload=base.workload)
    P = P.astype(np.intp, copy=False)
    if tables.is_graph:
        return _execute_graph_fault_placements(tables, P)
    n, k = P.shape
    m = base.n_devices
    task_idx = np.arange(k)

    busy_pt = base.busy[task_idx, P]
    hostio_time_pt = base.hostio_time[task_idx, P]
    hostio_bytes_pt = base.hostio_bytes[task_idx, P]
    energy_in_pt = base.energy_in[task_idx, P]
    energy_out_pt = base.energy_out[task_idx, P]
    node_surv_pt = tables.node_survival[task_idx, P]
    pen_time_pt = np.empty((n, k))
    pen_energy_pt = np.empty((n, k))
    pen_bytes_pt = np.empty((n, k))
    edge_surv_pt = np.empty((n, k))
    pen_time_pt[:, 0] = base.first_penalty_time[P[:, 0]]
    pen_energy_pt[:, 0] = base.first_penalty_energy[P[:, 0]]
    pen_bytes_pt[:, 0] = base.first_penalty_bytes[P[:, 0]]
    edge_surv_pt[:, 0] = tables.first_edge_survival[P[:, 0]]
    if k > 1:
        src, dst = P[:, :-1], P[:, 1:]
        pen_time_pt[:, 1:] = base.penalty_time[src, dst]
        pen_energy_pt[:, 1:] = base.penalty_energy[src, dst]
        pen_bytes_pt[:, 1:] = base.penalty_bytes[src, dst]
        edge_surv_pt[:, 1:] = tables.edge_survival[src, dst]
    transfer_pt = hostio_time_pt + pen_time_pt

    if base.missing_links and np.isnan(transfer_pt).any():
        # Same rejection as the classic engine: a placement that traverses a
        # device pair without a link cannot run, faults or no faults.
        i, t = (int(v) for v in np.argwhere(np.isnan(transfer_pt))[0])
        current = base.aliases[P[i, t]]
        if np.isnan(hostio_time_pt[i, t]):
            a, b = base.platform.host, current
        else:
            a = base.platform.host if t == 0 else base.aliases[P[i, t - 1]]
            b = current
        raise KeyError(
            f"no link defined between {a!r} and {b!r} "
            f"(required by placement {placement_labels(P[i : i + 1], base.aliases)[0]!r})"
        )

    q = tables.profile.straggler_probability
    sigma = tables.profile.straggler_slowdown
    c = tables.timeout.timeout_s
    cfin = c if math.isfinite(c) else 0.0
    retry = tables.retry

    success = np.ones(n)
    attempts_total = np.zeros(n)
    total_time = np.zeros(n)
    transferred = np.zeros(n)
    transfer_energy = np.zeros(n)
    busy_by_device = np.zeros((n, m))
    flops_by_device = np.zeros((n, m))
    for t in range(k):
        dur = busy_pt[:, t] + transfer_pt[:, t]
        surv = node_surv_pt[:, t] * edge_surv_pt[:, t]
        succ, n_succ, task_time = _attempt_statistics(dur, surv, q, sigma, c, cfin, retry)
        success = success * succ
        attempts_total += n_succ
        total_time += task_time
        transferred += (hostio_bytes_pt[:, t] + pen_bytes_pt[:, t]) * n_succ
        transfer_energy += energy_in_pt[:, t] * n_succ
        transfer_energy += energy_out_pt[:, t] * n_succ
        transfer_energy += pen_energy_pt[:, t] * n_succ
        col = P[:, t]
        for d in range(m):
            mask = col == d
            busy_by_device[:, d] += (busy_pt[:, t] * n_succ) * mask
            flops_by_device[:, d] += (base.task_flops[t] * n_succ) * mask

    impossible = ~np.isfinite(total_time)
    safe_total = np.where(impossible, 0.0, total_time)
    result = _finalize_placements(
        base, P, safe_total, transferred, transfer_energy, busy_by_device, flops_by_device
    )
    return FaultBatchExecutionResult(
        tables=base,
        placements=P,
        total_time_s=np.where(impossible, np.inf, safe_total),
        busy_by_device=busy_by_device,
        flops_by_device=flops_by_device,
        transferred_bytes=transferred,
        transfer_energy_j=transfer_energy,
        active_j=result.active_j,
        idle_j=result.idle_j,
        energy_total_j=np.where(impossible, np.inf, result.energy_total_j),
        operating_cost=np.where(impossible, np.inf, result.operating_cost),
        fault_tables=tables,
        success_probability=success,
        expected_attempts=attempts_total,
    )


def _execute_graph_fault_placements(
    tables: FaultChainCostTables, P: np.ndarray
) -> FaultBatchExecutionResult:
    """DAG expected-cost engine: expected durations in the critical-path fold."""
    base = tables.base
    n, k = P.shape
    m = base.n_devices
    task_idx = np.arange(k)
    preds = base.pred_positions

    busy_pt = base.busy[task_idx, P]
    hostio_time_pt = base.hostio_time[task_idx, P]
    hostio_bytes_pt = base.hostio_bytes[task_idx, P]
    energy_in_pt = base.energy_in[task_idx, P]
    energy_out_pt = base.energy_out[task_idx, P]
    node_surv_pt = tables.node_survival[task_idx, P]
    pen_time_pt = np.zeros((n, k))
    pen_energy_pt = np.zeros((n, k))
    pen_bytes_pt = np.zeros((n, k))
    edge_surv_pt = np.ones((n, k))
    for t in range(k):
        dst = P[:, t]
        if preds[t]:
            # Fan-in join: every incoming penalty hop must survive; the
            # survival factors fold left in the same canonical edge order as
            # the penalty costs.
            for p in preds[t]:
                pen_time_pt[:, t] += base.penalty_time[P[:, p], dst]
                pen_energy_pt[:, t] += base.penalty_energy[P[:, p], dst]
                pen_bytes_pt[:, t] += base.penalty_bytes[P[:, p], dst]
                edge_surv_pt[:, t] = edge_surv_pt[:, t] * tables.edge_survival[P[:, p], dst]
        else:
            pen_time_pt[:, t] = base.first_penalty_time[dst]
            pen_energy_pt[:, t] = base.first_penalty_energy[dst]
            pen_bytes_pt[:, t] = base.first_penalty_bytes[dst]
            edge_surv_pt[:, t] = tables.first_edge_survival[dst]
    transfer_pt = hostio_time_pt + pen_time_pt

    if base.missing_links and np.isnan(transfer_pt).any():
        i, t = (int(v) for v in np.argwhere(np.isnan(transfer_pt))[0])
        _raise_graph_missing_link(
            base.aliases,
            base.platform.host,
            preds[t],
            P,
            i,
            t,
            bool(np.isnan(hostio_time_pt[i, t])),
            lambda p: bool(np.isnan(base.penalty_time[P[i, p], P[i, t]])),
        )

    q = tables.profile.straggler_probability
    sigma = tables.profile.straggler_slowdown
    c = tables.timeout.timeout_s
    cfin = c if math.isfinite(c) else 0.0
    retry = tables.retry

    success = np.ones(n)
    attempts_total = np.zeros(n)
    total_time = np.zeros(n)
    finish = np.zeros((n, k))
    available = np.zeros((n, m))
    rows = np.arange(n)
    transferred = np.zeros(n)
    transfer_energy = np.zeros(n)
    busy_by_device = np.zeros((n, m))
    flops_by_device = np.zeros((n, m))
    for t in range(k):
        dur = busy_pt[:, t] + transfer_pt[:, t]
        surv = node_surv_pt[:, t] * edge_surv_pt[:, t]
        succ, n_succ, task_time = _attempt_statistics(dur, surv, q, sigma, c, cfin, retry)
        success = success * succ
        attempts_total += n_succ
        ready = np.zeros(n)
        for p in preds[t]:
            ready = np.maximum(ready, finish[:, p])
        start = np.maximum(ready, available[rows, P[:, t]])
        finish[:, t] = start + task_time
        available[rows, P[:, t]] = finish[:, t]
        total_time = np.maximum(total_time, finish[:, t])
        transferred += (hostio_bytes_pt[:, t] + pen_bytes_pt[:, t]) * n_succ
        transfer_energy += energy_in_pt[:, t] * n_succ
        transfer_energy += energy_out_pt[:, t] * n_succ
        transfer_energy += pen_energy_pt[:, t] * n_succ
        col = P[:, t]
        for d in range(m):
            mask = col == d
            busy_by_device[:, d] += (busy_pt[:, t] * n_succ) * mask
            flops_by_device[:, d] += (base.task_flops[t] * n_succ) * mask

    impossible = ~np.isfinite(total_time)
    safe_total = np.where(impossible, 0.0, total_time)
    result = _finalize_placements(
        base, P, safe_total, transferred, transfer_energy, busy_by_device, flops_by_device
    )
    return FaultBatchExecutionResult(
        tables=base,
        placements=P,
        total_time_s=np.where(impossible, np.inf, safe_total),
        busy_by_device=busy_by_device,
        flops_by_device=flops_by_device,
        transferred_bytes=transferred,
        transfer_energy_j=transfer_energy,
        active_j=result.active_j,
        idle_j=result.idle_j,
        energy_total_j=np.where(impossible, np.inf, result.energy_total_j),
        operating_cost=np.where(impossible, np.inf, result.operating_cost),
        fault_tables=tables,
        success_probability=success,
        expected_attempts=attempts_total,
    )


def execute_fault_placements_grid(
    tables: FaultGridCostTables, placements: np.ndarray
) -> FaultGridExecutionResult:
    """Expected cost of every placement under every fault regime, in one pass.

    The grid analogue of :func:`execute_fault_placements`: a leading scenario
    axis on every fold, per-scenario straggler parameters broadcast as
    columns, so each scenario slice is bitwise identical to the chain fault
    engine on ``tables.table(i)``.  Graph grids route through the
    deterministic-equivalent DAG recurrence.
    """
    base = tables.base
    P = as_placement_matrix(placements, base.aliases, base.n_tasks, workload=base.workload)
    P = P.astype(np.intp, copy=False)
    if tables.is_graph:
        return _execute_graph_fault_placements_grid(tables, P)
    n, k = P.shape
    s, m = base.n_scenarios, base.n_devices
    task_idx = np.arange(k)

    busy_pt = base.busy[:, task_idx, P]  # (s, n, k)
    hostio_time_pt = base.hostio_time[:, task_idx, P]
    hostio_bytes_pt = base.hostio_bytes[task_idx, P]  # (n, k)
    energy_in_pt = base.energy_in[:, task_idx, P]
    energy_out_pt = base.energy_out[:, task_idx, P]
    node_surv_pt = tables.node_survival[:, task_idx, P]  # (s, n, k)
    pen_time_pt = np.empty((s, n, k))
    pen_energy_pt = np.empty((s, n, k))
    pen_bytes_pt = np.empty((n, k))
    edge_surv_pt = np.empty((s, n, k))
    pen_time_pt[:, :, 0] = base.first_penalty_time[:, P[:, 0]]
    pen_energy_pt[:, :, 0] = base.first_penalty_energy[:, P[:, 0]]
    pen_bytes_pt[:, 0] = base.first_penalty_bytes[P[:, 0]]
    edge_surv_pt[:, :, 0] = tables.first_edge_survival[:, P[:, 0]]
    if k > 1:
        src, dst = P[:, :-1], P[:, 1:]
        pen_time_pt[:, :, 1:] = base.penalty_time[:, src, dst]
        pen_energy_pt[:, :, 1:] = base.penalty_energy[:, src, dst]
        pen_bytes_pt[:, 1:] = base.penalty_bytes[src, dst]
        edge_surv_pt[:, :, 1:] = tables.edge_survival[:, src, dst]
    transfer_pt = hostio_time_pt + pen_time_pt

    if base.missing_links and np.isnan(transfer_pt).any():
        _, i, t = (int(v) for v in np.argwhere(np.isnan(transfer_pt))[0])
        current = base.aliases[P[i, t]]
        if np.isnan(hostio_time_pt[:, i, t]).any():
            a, b = base.host, current
        else:
            a = base.host if t == 0 else base.aliases[P[i, t - 1]]
            b = current
        raise KeyError(
            f"no link defined between {a!r} and {b!r} "
            f"(required by placement {placement_labels(P[i : i + 1], base.aliases)[0]!r})"
        )

    q = np.array([profile.straggler_probability for profile in tables.profiles]).reshape(s, 1)
    sigma = np.array([profile.straggler_slowdown for profile in tables.profiles]).reshape(s, 1)
    c = tables.timeout.timeout_s
    cfin = c if math.isfinite(c) else 0.0
    retry = tables.retry

    success = np.ones((s, n))
    attempts_total = np.zeros((s, n))
    total_time = np.zeros((s, n))
    transferred = np.zeros((s, n))
    transfer_energy = np.zeros((s, n))
    busy_by_device = np.zeros((s, n, m))
    flops_by_device = np.zeros((s, n, m))
    for t in range(k):
        dur = busy_pt[:, :, t] + transfer_pt[:, :, t]
        surv = node_surv_pt[:, :, t] * edge_surv_pt[:, :, t]
        succ, n_succ, task_time = _attempt_statistics(dur, surv, q, sigma, c, cfin, retry)
        success = success * succ
        attempts_total += n_succ
        total_time += task_time
        transferred += (hostio_bytes_pt[:, t] + pen_bytes_pt[:, t]) * n_succ
        transfer_energy += energy_in_pt[:, :, t] * n_succ
        transfer_energy += energy_out_pt[:, :, t] * n_succ
        transfer_energy += pen_energy_pt[:, :, t] * n_succ
        col = P[:, t]
        for d in range(m):
            mask = col == d
            busy_by_device[:, :, d] += (busy_pt[:, :, t] * n_succ) * mask
            flops_by_device[:, :, d] += (base.task_flops[t] * n_succ) * mask

    impossible = ~np.isfinite(total_time)
    safe_total = np.where(impossible, 0.0, total_time)
    result = _finalize_grid(
        base, P, safe_total, transferred, transfer_energy, busy_by_device, flops_by_device
    )
    return FaultGridExecutionResult(
        tables=base,
        placements=P,
        total_time_s=np.where(impossible, np.inf, safe_total),
        busy_by_device=busy_by_device,
        flops_by_device=flops_by_device,
        transferred_bytes=transferred,
        transfer_energy_j=transfer_energy,
        active_j=result.active_j,
        idle_j=result.idle_j,
        energy_total_j=np.where(impossible, np.inf, result.energy_total_j),
        operating_cost=np.where(impossible, np.inf, result.operating_cost),
        fault_tables=tables,
        success_probability=success,
        expected_attempts=attempts_total,
    )


def _execute_graph_fault_placements_grid(
    tables: FaultGridCostTables, P: np.ndarray
) -> FaultGridExecutionResult:
    """Grid DAG expected-cost engine (scenario axis over the critical path)."""
    base = tables.base
    n, k = P.shape
    s, m = base.n_scenarios, base.n_devices
    task_idx = np.arange(k)
    preds = base.pred_positions

    busy_pt = base.busy[:, task_idx, P]
    hostio_time_pt = base.hostio_time[:, task_idx, P]
    hostio_bytes_pt = base.hostio_bytes[task_idx, P]
    energy_in_pt = base.energy_in[:, task_idx, P]
    energy_out_pt = base.energy_out[:, task_idx, P]
    node_surv_pt = tables.node_survival[:, task_idx, P]
    pen_time_pt = np.zeros((s, n, k))
    pen_energy_pt = np.zeros((s, n, k))
    pen_bytes_pt = np.zeros((n, k))
    edge_surv_pt = np.ones((s, n, k))
    for t in range(k):
        dst = P[:, t]
        if preds[t]:
            for p in preds[t]:
                pen_time_pt[:, :, t] += base.penalty_time[:, P[:, p], dst]
                pen_energy_pt[:, :, t] += base.penalty_energy[:, P[:, p], dst]
                pen_bytes_pt[:, t] += base.penalty_bytes[P[:, p], dst]
                edge_surv_pt[:, :, t] = (
                    edge_surv_pt[:, :, t] * tables.edge_survival[:, P[:, p], dst]
                )
        else:
            pen_time_pt[:, :, t] = base.first_penalty_time[:, dst]
            pen_energy_pt[:, :, t] = base.first_penalty_energy[:, dst]
            pen_bytes_pt[:, t] = base.first_penalty_bytes[dst]
            edge_surv_pt[:, :, t] = tables.first_edge_survival[:, dst]
    transfer_pt = hostio_time_pt + pen_time_pt

    if base.missing_links and np.isnan(transfer_pt).any():
        _, i, t = (int(v) for v in np.argwhere(np.isnan(transfer_pt))[0])
        _raise_graph_missing_link(
            base.aliases,
            base.host,
            preds[t],
            P,
            i,
            t,
            bool(np.isnan(hostio_time_pt[:, i, t]).any()),
            lambda p: bool(np.isnan(base.penalty_time[:, P[i, p], P[i, t]]).any()),
        )

    q = np.array([profile.straggler_probability for profile in tables.profiles]).reshape(s, 1)
    sigma = np.array([profile.straggler_slowdown for profile in tables.profiles]).reshape(s, 1)
    c = tables.timeout.timeout_s
    cfin = c if math.isfinite(c) else 0.0
    retry = tables.retry

    success = np.ones((s, n))
    attempts_total = np.zeros((s, n))
    total_time = np.zeros((s, n))
    finish = np.zeros((s, n, k))
    available = np.zeros((s, n, m))
    rows = np.arange(n)
    transferred = np.zeros((s, n))
    transfer_energy = np.zeros((s, n))
    busy_by_device = np.zeros((s, n, m))
    flops_by_device = np.zeros((s, n, m))
    for t in range(k):
        dur = busy_pt[:, :, t] + transfer_pt[:, :, t]
        surv = node_surv_pt[:, :, t] * edge_surv_pt[:, :, t]
        succ, n_succ, task_time = _attempt_statistics(dur, surv, q, sigma, c, cfin, retry)
        success = success * succ
        attempts_total += n_succ
        ready = np.zeros((s, n))
        for p in preds[t]:
            ready = np.maximum(ready, finish[:, :, p])
        start = np.maximum(ready, available[:, rows, P[:, t]])
        finish[:, :, t] = start + task_time
        available[:, rows, P[:, t]] = finish[:, :, t]
        total_time = np.maximum(total_time, finish[:, :, t])
        transferred += (hostio_bytes_pt[:, t] + pen_bytes_pt[:, t]) * n_succ
        transfer_energy += energy_in_pt[:, :, t] * n_succ
        transfer_energy += energy_out_pt[:, :, t] * n_succ
        transfer_energy += pen_energy_pt[:, :, t] * n_succ
        col = P[:, t]
        for d in range(m):
            mask = col == d
            busy_by_device[:, :, d] += (busy_pt[:, :, t] * n_succ) * mask
            flops_by_device[:, :, d] += (base.task_flops[t] * n_succ) * mask

    impossible = ~np.isfinite(total_time)
    safe_total = np.where(impossible, 0.0, total_time)
    result = _finalize_grid(
        base, P, safe_total, transferred, transfer_energy, busy_by_device, flops_by_device
    )
    return FaultGridExecutionResult(
        tables=base,
        placements=P,
        total_time_s=np.where(impossible, np.inf, safe_total),
        busy_by_device=busy_by_device,
        flops_by_device=flops_by_device,
        transferred_bytes=transferred,
        transfer_energy_j=transfer_energy,
        active_j=result.active_j,
        idle_j=result.idle_j,
        energy_total_j=np.where(impossible, np.inf, result.energy_total_j),
        operating_cost=np.where(impossible, np.inf, result.operating_cost),
        fault_tables=tables,
        success_probability=success,
        expected_attempts=attempts_total,
    )


# ---------------------------------------------------------------------------
# Sequential reference
# ---------------------------------------------------------------------------

def expected_record(
    tables: FaultChainCostTables, placement: Sequence[int] | np.ndarray
) -> ExpectedFaultRecord:
    """Sequential fault-aware reference: one placement, scalar arithmetic.

    Replays the expected-cost accumulation with python floats in the same
    operation order as the vectorized engine, so every field is bitwise
    identical to the corresponding :func:`execute_fault_placements` array
    element.  ``placement`` is a row of device indices into
    ``tables.aliases`` or of the alias strings themselves.
    """
    base = tables.base
    platform = base.platform
    alias_index = {alias: i for i, alias in enumerate(base.aliases)}
    row: list[int] = []
    for d in placement:
        if isinstance(d, str):
            if d not in alias_index:
                raise ValueError(
                    f"placement {tuple(placement)!r} for workload {base.workload!r} "
                    f"uses device {d!r}, not among the candidates {list(base.aliases)}"
                )
            row.append(alias_index[d])
        else:
            row.append(int(d))
    if len(row) != base.n_tasks:
        raise ValueError(
            f"placement {row!r} has {len(row)} entries but workload "
            f"{base.workload!r} has {base.n_tasks} tasks"
        )
    aliases_row = tuple(base.aliases[d] for d in row)
    is_graph = isinstance(base, GraphCostTables)

    q = tables.profile.straggler_probability
    sigma = tables.profile.straggler_slowdown
    c = tables.timeout.timeout_s
    cfin = c if math.isfinite(c) else 0.0
    retry = tables.retry

    task_records: list[ExpectedTaskFaults] = []
    busy: dict[str, float] = {alias: 0.0 for alias in platform.devices}
    flops: dict[str, float] = {alias: 0.0 for alias in platform.devices}
    success = 1.0
    attempts_total = 0.0
    transferred = 0.0
    transfer_energy = 0.0
    total_time = 0.0
    finish: list[float] = []
    available: dict[str, float] = {alias: 0.0 for alias in platform.devices}
    for pos, (task_name, d) in enumerate(zip(base.task_names, row)):
        alias = base.aliases[d]
        if is_graph:
            preds = base.pred_positions[pos]
            if preds:
                pen_time = 0.0
                pen_energy = 0.0
                pen_bytes = 0.0
                edge_surv = 1.0
                for p in preds:
                    pen_time += float(base.penalty_time[row[p], d])
                    pen_energy += float(base.penalty_energy[row[p], d])
                    pen_bytes += float(base.penalty_bytes[row[p], d])
                    edge_surv = edge_surv * float(tables.edge_survival[row[p], d])
            else:
                pen_time = float(base.first_penalty_time[d])
                pen_energy = float(base.first_penalty_energy[d])
                pen_bytes = float(base.first_penalty_bytes[d])
                edge_surv = float(tables.first_edge_survival[d])
        else:
            if pos == 0:
                pen_time = float(base.first_penalty_time[d])
                pen_energy = float(base.first_penalty_energy[d])
                pen_bytes = float(base.first_penalty_bytes[d])
                edge_surv = float(tables.first_edge_survival[d])
            else:
                pen_time = float(base.penalty_time[row[pos - 1], d])
                pen_energy = float(base.penalty_energy[row[pos - 1], d])
                pen_bytes = float(base.penalty_bytes[row[pos - 1], d])
                edge_surv = float(tables.edge_survival[row[pos - 1], d])
        busy_time = float(base.busy[pos, d])
        transfer_time = float(base.hostio_time[pos, d]) + pen_time
        if math.isnan(transfer_time):
            raise KeyError(
                f"no link defined along placement {''.join(aliases_row)!r} "
                f"(task {task_name!r} on {alias!r})"
            )
        dur = busy_time + transfer_time
        surv = float(tables.node_survival[pos, d]) * edge_surv
        succ, n_succ, task_time = _scalar_attempt_statistics(dur, surv, q, sigma, c, cfin, retry)
        success = success * succ
        attempts_total += n_succ
        if is_graph:
            ready = 0.0
            for p in preds:
                ready = max(ready, finish[p])
            start = max(ready, available[alias])
            end = start + task_time
            finish.append(end)
            available[alias] = end
            total_time = max(total_time, end)
        else:
            total_time += task_time
        transferred += (float(base.hostio_bytes[pos, d]) + pen_bytes) * n_succ
        transfer_energy += float(base.energy_in[pos, d]) * n_succ
        transfer_energy += float(base.energy_out[pos, d]) * n_succ
        transfer_energy += pen_energy * n_succ
        busy[alias] += busy_time * n_succ
        flops[alias] += float(base.task_flops[pos]) * n_succ
        task_records.append(
            ExpectedTaskFaults(
                task_name=task_name,
                device=alias,
                success_probability=succ,
                expected_attempts=n_succ,
                expected_time_s=task_time,
            )
        )

    impossible = not math.isfinite(total_time)
    safe_total = 0.0 if impossible else total_time
    energy, cost_total = finalize_execution(platform, busy, safe_total, transfer_energy)
    return ExpectedFaultRecord(
        placement=aliases_row,
        tasks=tuple(task_records),
        success_probability=success,
        expected_attempts=attempts_total,
        total_time_s=math.inf if impossible else safe_total,
        busy_time_by_device=busy,
        flops_by_device=flops,
        transferred_bytes=transferred,
        energy=energy,
        energy_total_j=math.inf if impossible else energy.total_j,
        operating_cost=math.inf if impossible else cost_total,
    )
