"""Resilient placement planning: a primary plan plus per-device backups.

:func:`plan_with_fallback` precomputes, besides the optimal *primary*
placement, one backup placement per non-host candidate device that avoids
that device entirely -- so when a device fails outright (not per-attempt,
but "gone"), execution degrades to a pre-computed feasible plan instead of
re-planning under fire.  Each backup is itself optimal over the reduced
device set, verified by the same engines as the primary.

Dispatch boundary (the PR-6 pattern, extended):

* **Fault-free plans** (``retry=None``) delegate to
  :func:`repro.search.planner.plan_workload` -- exact polynomial DP where
  its boundary admits the workload/objective, streaming enumeration
  otherwise, with the usual recorded reason.
* **Fault-aware plans** (``retry=`` given) rank placements by
  *expected cost under faults*.  That objective couples consecutive tasks
  through survival factors but is still evaluated exactly by the vectorized
  fault engine; the DP lattice, however, compiles from the classic tables
  only, so fault-aware planning always **streams** the sub-space
  (``method="auto"``/``"enumerate"``) and ``method="dp"`` raises with the
  reason.  The sub-space is bounded by ``fallback_limit`` exactly like the
  classic enumeration fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from .engine import execute_fault_placements
from .models import FaultProfile
from .retry import RetryPolicy, TimeoutPolicy
from .tables import build_fault_tables

if TYPE_CHECKING:  # pragma: no cover
    from ..devices.simulator import SimulatedExecutor
    from ..tasks.chain import TaskChain
    from ..tasks.graph import TaskGraph

__all__ = ["DevicePlan", "FallbackPlan", "plan_with_fallback"]

#: Largest sub-space the fault-aware streaming planner will enumerate.
DEFAULT_FAULT_PLAN_LIMIT = 1 << 20


@dataclass(frozen=True)
class DevicePlan:
    """One component plan: a placement, its objective value and provenance."""

    objective: str
    placement: tuple[str, ...]
    label: str
    value: float
    #: Devices the plan was allowed to use.
    aliases: tuple[str, ...]
    #: ``"chain-dp"``/``"level-dp"``/``"enumeration"`` (fault-free, from the
    #: exact planner) or ``"fault-stream"`` (expected-cost enumeration).
    method: str
    #: Success probability under the fault profile (``None`` for fault-free plans).
    success_probability: float | None = None


@dataclass(frozen=True)
class FallbackPlan:
    """A primary placement plus one backup per non-host candidate device.

    ``backups[alias]`` is the optimal plan over the candidate set without
    ``alias``: if that device fails for good, switching to the backup keeps
    the workload running on surviving hardware with no re-planning.  Host
    failure is out of scope -- the host anchors I/O and orchestration, so
    losing it ends the application, not the placement.
    """

    objective: str
    workload: str
    aliases: tuple[str, ...]
    primary: DevicePlan
    backups: Mapping[str, DevicePlan]
    #: Why the fault-aware path streamed instead of using the DP (or ``None``
    #: when the exact planner served every component plan).
    dispatch_reason: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "backups", MappingProxyType(dict(self.backups)))

    def backup_for(self, alias: str) -> DevicePlan:
        """The pre-computed plan to switch to when ``alias`` fails."""
        try:
            return self.backups[alias]
        except KeyError as exc:
            raise KeyError(
                f"no backup plan for device {alias!r}; covered devices: "
                f"{sorted(self.backups)}"
            ) from exc

    def covered_devices(self) -> tuple[str, ...]:
        return tuple(self.backups)

    def summary(self) -> str:
        lines = [
            f"fallback plan for {self.workload!r} (objective: {self.objective})",
            f"  primary : {self.primary.label}  value={self.primary.value:.6g}"
            f"  [{self.primary.method}]",
        ]
        for alias in self.backups:
            plan = self.backups[alias]
            lines.append(
                f"  -{alias:<6}: {plan.label}  value={plan.value:.6g}  [{plan.method}]"
            )
        return "\n".join(lines)


def _fault_stream_plan(
    executor: "SimulatedExecutor",
    workload: "TaskChain | TaskGraph",
    objective: str,
    aliases: tuple[str, ...],
    retry: RetryPolicy,
    faults: FaultProfile | None,
    timeout: TimeoutPolicy | None,
    min_success: float,
    fallback_limit: int,
) -> DevicePlan:
    """Expected-cost-under-faults optimum of one device subset, by enumeration."""
    from ..offload.space import placement_matrix, space_size

    n_tasks = len(workload)
    size = space_size(n_tasks, len(aliases))
    if size > fallback_limit:
        raise ValueError(
            f"fault-aware planning would enumerate {size} placements over "
            f"{list(aliases)} (limit {fallback_limit}); shrink the device set "
            f"or use search_space(..., retry=...) to stream the space in shards"
        )
    tables = build_fault_tables(
        workload, executor.platform, aliases, retry=retry, faults=faults, timeout=timeout
    )
    batch = execute_fault_placements(tables, placement_matrix(n_tasks, len(aliases)))
    values = batch.metric_values(objective)
    feasible = batch.success_probability >= min_success if min_success > 0.0 else np.isfinite(values)
    feasible = feasible & np.isfinite(values)
    if not feasible.any():
        raise ValueError(
            f"no placement of {workload.name!r} over {list(aliases)} reaches "
            f"success probability {min_success} under the fault profile"
        )
    index = int(np.argmin(np.where(feasible, values, np.inf)))
    return DevicePlan(
        objective=objective,
        placement=batch.placement(index),
        label=batch.label(index),
        value=float(values[index]),
        aliases=aliases,
        method="fault-stream",
        success_probability=float(batch.success_probability[index]),
    )


def plan_with_fallback(
    executor: "SimulatedExecutor",
    workload: "TaskChain | TaskGraph",
    objective: str = "time",
    *,
    devices: Sequence[str] | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultProfile | None = None,
    timeout: TimeoutPolicy | None = None,
    min_success: float = 0.0,
    method: str = "auto",
    fallback_limit: int = DEFAULT_FAULT_PLAN_LIMIT,
) -> FallbackPlan:
    """Optimal primary placement plus a verified backup per non-host device.

    Fault-free (``retry=None``): every component plan comes from the exact
    planner (DP where admissible, recorded enumeration otherwise).
    Fault-aware (``retry=`` given): plans minimise *expected* cost under the
    profile, streamed over the sub-space (see the module docstring for the
    dispatch boundary); ``min_success`` additionally filters placements by
    success probability.  Either way, each backup is optimal over the
    candidate set minus the failed device, so any single non-host device
    failure degrades to a pre-computed feasible plan.
    """
    if method not in ("auto", "dp", "enumerate"):
        raise ValueError(f"unknown method {method!r}; choose 'auto', 'dp' or 'enumerate'")
    if retry is None and (faults is not None or timeout is not None):
        raise ValueError(
            "fault-aware planning needs retry=RetryPolicy(...); "
            "got faults/timeout without a retry policy"
        )
    if not 0.0 <= float(min_success) <= 1.0:
        raise ValueError(f"min_success must be in [0, 1], got {min_success!r}")
    platform = executor.platform
    aliases = tuple(devices) if devices is not None else tuple(platform.aliases)
    if len(aliases) < 2:
        raise ValueError(
            f"fallback planning needs at least two candidate devices, got {list(aliases)}"
        )
    platform.validate_aliases(aliases)
    host = platform.host
    covered = tuple(alias for alias in aliases if alias != host)
    if not covered:
        raise ValueError("no non-host candidate device to back up")

    dispatch_reason: str | None = None
    if retry is not None:
        if method == "dp":
            raise ValueError(
                "method='dp' cannot serve fault-aware planning: expected cost "
                "under faults couples tasks through survival factors outside "
                "the DP lattice; use method='auto' (streams) or drop retry= "
                "for the classic exact planner"
            )
        dispatch_reason = (
            "expected-cost-under-faults objectives stream the sub-space "
            "(outside the DP planner boundary)"
        )

        def component(subset: tuple[str, ...]) -> DevicePlan:
            return _fault_stream_plan(
                executor, workload, objective, subset, retry, faults, timeout,
                float(min_success), fallback_limit,
            )

    else:
        from ..search.planner import plan_workload

        def component(subset: tuple[str, ...]) -> DevicePlan:
            plan = plan_workload(
                executor, workload, objective, devices=subset, method=method
            )
            return DevicePlan(
                objective=plan.objective,
                placement=plan.placement,
                label=plan.label,
                value=plan.value,
                aliases=subset,
                method=plan.method,
            )

    primary = component(aliases)
    backups: dict[str, DevicePlan] = {}
    for alias in covered:
        subset = tuple(a for a in aliases if a != alias)
        backups[alias] = component(subset)
    return FallbackPlan(
        objective=objective,
        workload=workload.name,
        aliases=aliases,
        primary=primary,
        backups=backups,
        dispatch_reason=dispatch_reason,
    )
