"""Condition-parameterized platforms: environment drift as first-class data.

The paper shows algorithm rankings are unstable under *system noise*; the same
instability appears under *environment drift* -- a Wi-Fi link degrading to
LTE, a loaded CPU, DVFS throttling, a spot-price spike.  This subpackage
turns drift into data:

* :class:`ConditionAxis` subclasses transform a platform along one drift
  dimension (link bandwidth/latency scaling, device load, DVFS frequency,
  energy price, link-quality interpolation, and the failure-regime axes
  :class:`DeviceFailureRate` / :class:`LinkDropoutRate` which install
  :mod:`repro.faults` profiles);
* a :class:`Scenario` names one point in condition space (axes pinned to
  values, plus a weight for expectation-style objectives);
* a :class:`ScenarioGrid` is an ordered cartesian-or-explicit set of
  scenarios, with :func:`link_degradation_grid` building the canonical
  wifi->lte sweep;
* :func:`apply_conditions` derives a scenario's platform through
  ``Platform.with_devices`` / ``Platform.with_links``.

Downstream, :meth:`repro.devices.batch.ChainCostTables.build_grid` evaluates
all (scenario, placement) pairs in one NumPy pass and
:func:`repro.search.search_grid` selects placements that stay good across the
whole grid (worst case, expectation, minimax regret).
"""

from .conditions import (
    ConditionAxis,
    DeviceFailureRate,
    DeviceLoadFactor,
    DvfsFrequencyScale,
    EnergyPriceScale,
    LinkBandwidthScale,
    LinkDropoutRate,
    LinkInterpolation,
    LinkLatencyScale,
    Scenario,
    apply_conditions,
)
from .grid import ScenarioGrid, link_degradation_grid

__all__ = [
    "ConditionAxis",
    "LinkBandwidthScale",
    "LinkLatencyScale",
    "DeviceLoadFactor",
    "DvfsFrequencyScale",
    "EnergyPriceScale",
    "LinkInterpolation",
    "DeviceFailureRate",
    "LinkDropoutRate",
    "Scenario",
    "ScenarioGrid",
    "apply_conditions",
    "link_degradation_grid",
]
