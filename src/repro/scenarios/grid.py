"""Scenario grids: cartesian or explicit collections of condition points.

A :class:`ScenarioGrid` is the unit the grid execution engine and the robust
search driver consume: an ordered, named, weighted set of
:class:`~repro.scenarios.conditions.Scenario` points, with a
:meth:`~ScenarioGrid.platforms` method deriving the per-scenario platforms
from one base platform.  :func:`link_degradation_grid` builds the canonical
wifi->lte sweep of the robustness experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Iterator, Sequence

import numpy as np

from ..devices.link import LinkSpec
from ..devices.platform import Platform
from .conditions import ConditionAxis, LinkInterpolation, Scenario, apply_conditions

__all__ = ["ScenarioGrid", "link_degradation_grid"]


@dataclass(frozen=True)
class ScenarioGrid:
    """An ordered collection of uniquely named scenarios.

    Build one explicitly from scenarios, or as the cartesian product of
    condition axes with :meth:`cartesian`.
    """

    scenarios: tuple[Scenario, ...]

    def __post_init__(self) -> None:
        scenarios = tuple(self.scenarios)
        if not scenarios:
            raise ValueError("a scenario grid needs at least one scenario")
        names = [scenario.name for scenario in scenarios]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ValueError(f"scenario names must be unique, duplicated: {duplicates}")
        object.__setattr__(self, "scenarios", scenarios)

    @classmethod
    def cartesian(
        cls,
        axes: "Sequence[tuple[ConditionAxis, Sequence[float]]]",
        weights: "Sequence[float] | None" = None,
    ) -> "ScenarioGrid":
        """Cartesian product of axis value lists, in lexicographic order.

        Scenario names are the ``axis=value`` fragments joined with ``|``
        (e.g. ``"link-bandwidth=0.5|device-load=2"``).  ``weights`` optionally
        assigns one weight per grid point, in the same lexicographic order.
        """
        if not axes:
            raise ValueError("cartesian grid needs at least one axis")
        for axis, values in axes:
            if not list(values):
                raise ValueError(f"axis {axis.name!r} has no values")
        combos = list(product(*[list(values) for _, values in axes]))
        if weights is not None:
            if len(weights) != len(combos):
                raise ValueError(
                    f"expected {len(combos)} weights (one per grid point), got {len(weights)}"
                )
            # Validate here so a bad weight names the caller's index, not the
            # generated scenario the per-point constructor would blame.
            for i, weight in enumerate(weights):
                w = float(weight)
                if not math.isfinite(w) or w < 0:
                    raise ValueError(
                        f"weights[{i}] must be finite and non-negative, got {weight!r}"
                    )
        scenarios = []
        for i, combo in enumerate(combos):
            settings = tuple((axis, value) for (axis, _), value in zip(axes, combo))
            scenarios.append(
                Scenario(
                    name="|".join(axis.describe(value) for axis, value in settings),
                    settings=settings,
                    weight=1.0 if weights is None else float(weights[i]),
                )
            )
        return cls(scenarios=tuple(scenarios))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(scenario.name for scenario in self.scenarios)

    @property
    def weights(self) -> np.ndarray:
        """Raw (unnormalised) scenario weights, in grid order."""
        return np.array([scenario.weight for scenario in self.scenarios], dtype=float)

    def scenario(self, name: str) -> Scenario:
        for candidate in self.scenarios:
            if candidate.name == name:
                return candidate
        raise KeyError(f"unknown scenario {name!r}; available: {list(self.names)}")

    def platforms(self, base: Platform) -> list[Platform]:
        """Per-scenario derived platforms, in grid order."""
        return [apply_conditions(base, scenario) for scenario in self.scenarios]


def link_degradation_grid(
    links: "Sequence[tuple[str, str]]",
    start: LinkSpec,
    end: LinkSpec,
    n_points: int = 5,
    axis_name: str = "link-quality",
) -> ScenarioGrid:
    """Sweep some links from one quality to another in ``n_points`` steps.

    Point ``i`` installs the :class:`LinkInterpolation` of ``start`` and
    ``end`` at ``t = i / (n_points - 1)`` -- ``t=0`` is ``start`` verbatim
    (e.g. healthy Wi-Fi), ``t=1`` is ``end`` (fallen back to LTE).  Scenario
    names carry the interpolation parameter (``"link-quality=0.25"``).
    """
    if n_points < 2:
        raise ValueError("a degradation sweep needs at least 2 points")
    axis = LinkInterpolation(links=tuple(links), start=start, end=end, name=axis_name)
    values = [i / (n_points - 1) for i in range(n_points)]
    return ScenarioGrid.cartesian([(axis, values)])
