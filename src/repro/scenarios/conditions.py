"""Condition axes and scenarios: environment drift as first-class objects.

Every layer below this one assumes a frozen :class:`~repro.devices.platform.Platform`;
real deployments drift -- a Wi-Fi link degrades to LTE, a co-located job loads
the CPU, DVFS throttles the clocks, electricity prices move.  A
:class:`ConditionAxis` describes *one* such drift dimension as a pure platform
transformation; a :class:`Scenario` pins several axes to concrete values (one
named point in condition space); :func:`apply_conditions` derives the
scenario's platform through the :meth:`Platform.with_devices` /
:meth:`Platform.with_links` primitives.

All axes are value-type dataclasses (picklable, hashable) so scenarios can
cross process boundaries in sharded sweeps, and applying an axis at its
neutral value (scale ``1.0``, interpolation ``t=0`` with matching endpoints)
reproduces the base platform's cost model **bitwise** (multiplying an IEEE-754
double by ``1.0`` is exact).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Sequence

from ..devices.device import DeviceSpec
from ..devices.link import LinkSpec
from ..devices.platform import Platform
from ..faults.models import DeviceFailure, FaultProfile, LinkDropout

__all__ = [
    "ConditionAxis",
    "LinkBandwidthScale",
    "LinkLatencyScale",
    "DeviceLoadFactor",
    "DvfsFrequencyScale",
    "EnergyPriceScale",
    "LinkInterpolation",
    "DeviceFailureRate",
    "LinkDropoutRate",
    "Scenario",
    "apply_conditions",
]


def _normalise_pairs(
    links: "Sequence[tuple[str, str]] | None",
) -> "tuple[tuple[str, str], ...] | None":
    if links is None:
        return None
    return tuple((a, b) if a <= b else (b, a) for a, b in links)


class ConditionAxis:
    """One dimension of environment drift: ``value -> platform transformation``.

    Subclasses define :meth:`apply`, a pure function from ``(platform, value)``
    to a derived platform, and expose a ``name`` used in scenario labels.
    """

    name: str = "condition"

    def apply(self, platform: Platform, value: float) -> Platform:  # pragma: no cover
        raise NotImplementedError

    def describe(self, value: float) -> str:
        """Human-readable ``axis=value`` fragment for generated scenario names."""
        return f"{self.name}={value:g}"


def _selected_links(
    platform: Platform, links: "tuple[tuple[str, str], ...] | None"
) -> list[tuple[str, str]]:
    if links is None:
        return list(platform.links)
    for a, b in links:
        platform.link(a, b)  # raises with the usual message when absent
    return [(a, b) for (a, b) in links]


def _selected_devices(platform: Platform, devices: "tuple[str, ...] | None") -> list[str]:
    if devices is None:
        return list(platform.devices)
    platform.validate_aliases(devices)
    return list(devices)


@dataclass(frozen=True)
class LinkBandwidthScale(ConditionAxis):
    """Multiply the bandwidth of some links (``None`` = every link) by the value.

    ``value > 1`` is an upgrade, ``value < 1`` congestion/degradation.
    """

    links: "tuple[tuple[str, str], ...] | None" = None
    name: str = "link-bandwidth"

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", _normalise_pairs(self.links))

    def apply(self, platform: Platform, value: float) -> Platform:
        if value <= 0:
            raise ValueError(f"{self.name} scale must be positive, got {value!r}")
        return platform.with_links(
            {
                pair: replace(link, bandwidth_gbs=link.bandwidth_gbs * value)
                for pair in _selected_links(platform, self.links)
                for link in (platform.link(*pair),)
            }
        )


@dataclass(frozen=True)
class LinkLatencyScale(ConditionAxis):
    """Multiply the latency of some links (``None`` = every link) by the value."""

    links: "tuple[tuple[str, str], ...] | None" = None
    name: str = "link-latency"

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", _normalise_pairs(self.links))

    def apply(self, platform: Platform, value: float) -> Platform:
        if value < 0:
            raise ValueError(f"{self.name} scale must be non-negative, got {value!r}")
        return platform.with_links(
            {
                pair: replace(link, latency_s=link.latency_s * value)
                for pair in _selected_links(platform, self.links)
                for link in (platform.link(*pair),)
            }
        )


@dataclass(frozen=True)
class DeviceLoadFactor(ConditionAxis):
    """Competing load on some devices: value ``L >= 1`` divides the effective
    compute throughput and memory bandwidth by ``L`` (the task gets a ``1/L``
    share of the device)."""

    devices: "tuple[str, ...] | None" = None
    name: str = "device-load"

    def __post_init__(self) -> None:
        if self.devices is not None:
            object.__setattr__(self, "devices", tuple(self.devices))

    def apply(self, platform: Platform, value: float) -> Platform:
        if value < 1:
            raise ValueError(f"{self.name} must be >= 1 (no load), got {value!r}")
        return platform.with_devices(
            {
                alias: replace(
                    spec,
                    peak_gflops=spec.peak_gflops / value,
                    memory_bandwidth_gbs=spec.memory_bandwidth_gbs / value,
                )
                for alias in _selected_devices(platform, self.devices)
                for spec in (platform.device(alias),)
            }
        )


@dataclass(frozen=True)
class DvfsFrequencyScale(ConditionAxis):
    """DVFS throttling: frequency factor ``f`` in ``(0, 1]`` scales the peak
    throughput and (to first order, dynamic power being roughly proportional
    to frequency at a fixed voltage step) the active power draw."""

    devices: "tuple[str, ...] | None" = None
    name: str = "dvfs"

    def __post_init__(self) -> None:
        if self.devices is not None:
            object.__setattr__(self, "devices", tuple(self.devices))

    def apply(self, platform: Platform, value: float) -> Platform:
        if not 0 < value <= 1:
            raise ValueError(f"{self.name} frequency factor must lie in (0, 1], got {value!r}")
        return platform.with_devices(
            {
                alias: replace(
                    spec,
                    peak_gflops=spec.peak_gflops * value,
                    power_active_w=spec.power_active_w * value,
                )
                for alias in _selected_devices(platform, self.devices)
                for spec in (platform.device(alias),)
            }
        )


@dataclass(frozen=True)
class EnergyPriceScale(ConditionAxis):
    """Multiply the operating cost per hour of some devices by the value
    (spot-price moves, peak-hour tariffs)."""

    devices: "tuple[str, ...] | None" = None
    name: str = "energy-price"

    def __post_init__(self) -> None:
        if self.devices is not None:
            object.__setattr__(self, "devices", tuple(self.devices))

    def apply(self, platform: Platform, value: float) -> Platform:
        if value < 0:
            raise ValueError(f"{self.name} multiplier must be non-negative, got {value!r}")
        return platform.with_devices(
            {
                alias: replace(spec, cost_per_hour=spec.cost_per_hour * value)
                for alias in _selected_devices(platform, self.devices)
                for spec in (platform.device(alias),)
            }
        )


def _interpolate(a: float, b: float, t: float) -> float:
    """Geometric interpolation for positive endpoints, linear otherwise.

    Link qualities span orders of magnitude (Wi-Fi -> LTE is 10x bandwidth,
    15x latency), where geometric steps are the natural parameterisation;
    zero-valued endpoints (e.g. a free link) fall back to linear.  Exact at
    the endpoints: ``t=0`` returns ``a`` and ``t=1`` returns ``b``.
    """
    if t == 0.0:
        return a
    if t == 1.0:
        return b
    if a > 0 and b > 0:
        return math.exp((1.0 - t) * math.log(a) + t * math.log(b))
    return (1.0 - t) * a + t * b


@dataclass(frozen=True)
class LinkInterpolation(ConditionAxis):
    """Morph some links between two reference specs: value ``t`` in ``[0, 1]``.

    ``t=0`` installs ``start`` verbatim, ``t=1`` installs ``end``; in between,
    bandwidth/latency/energy-per-byte interpolate geometrically (linear when
    an endpoint is zero).  This is the wifi->lte degradation axis of the
    robustness experiment.
    """

    links: "tuple[tuple[str, str], ...]" = ()
    start: LinkSpec = None  # type: ignore[assignment]
    end: LinkSpec = None  # type: ignore[assignment]
    name: str = "link-quality"

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("LinkInterpolation needs at least one link pair")
        if self.start is None or self.end is None:
            raise ValueError("LinkInterpolation needs both start and end LinkSpecs")
        object.__setattr__(self, "links", _normalise_pairs(self.links))

    def apply(self, platform: Platform, value: float) -> Platform:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{self.name} interpolation parameter must lie in [0, 1], got {value!r}")
        if value == 0.0:
            spec = self.start
        elif value == 1.0:
            spec = self.end
        else:
            spec = LinkSpec(
                name=f"{self.start.name}~{value:.3g}~{self.end.name}",
                bandwidth_gbs=_interpolate(self.start.bandwidth_gbs, self.end.bandwidth_gbs, value),
                latency_s=_interpolate(self.start.latency_s, self.end.latency_s, value),
                energy_per_byte_j=_interpolate(
                    self.start.energy_per_byte_j, self.end.energy_per_byte_j, value
                ),
            )
        return platform.with_links({pair: spec for pair in _selected_links(platform, self.links)})


@dataclass(frozen=True)
class DeviceFailureRate(ConditionAxis):
    """Per-task-execution failure probability of some devices (``None`` = all).

    A *failure-regime* axis: the value becomes the
    :class:`~repro.faults.models.DeviceFailure` probability of the selected
    devices in the derived platform's attached
    :class:`~repro.faults.models.FaultProfile` (other profile components --
    link dropout, stragglers, other devices' rates -- carry over), so a
    :class:`ScenarioGrid` sweeps failure rates exactly the way it sweeps
    bandwidth or clocks.  Value ``0`` reproduces fault-free evaluation.
    """

    devices: "tuple[str, ...] | None" = None
    name: str = "device-failure"

    def __post_init__(self) -> None:
        if self.devices is not None:
            object.__setattr__(self, "devices", tuple(self.devices))

    def apply(self, platform: Platform, value: float) -> Platform:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{self.name} must be a probability in [0, 1], got {value!r}")
        current = platform.faults if platform.faults is not None else FaultProfile()
        failure = current.device_failure if current.device_failure is not None else DeviceFailure()
        if self.devices is None:
            failure = replace(failure, rate=float(value))
        else:
            _selected_devices(platform, self.devices)
            rates = dict(failure.rates)
            for alias in self.devices:
                rates[alias] = float(value)
            failure = replace(failure, rates=tuple(sorted(rates.items())))
        return platform.with_faults(replace(current, device_failure=failure))


@dataclass(frozen=True)
class LinkDropoutRate(ConditionAxis):
    """Per-transfer drop probability of some links (``None`` = every pair).

    The value becomes the :class:`~repro.faults.models.LinkDropout`
    probability of the selected link pairs in the derived platform's attached
    fault profile; every dropped transfer fails the attempt that issued it
    and is re-paid on retry.  Value ``0`` reproduces fault-free evaluation.
    """

    links: "tuple[tuple[str, str], ...] | None" = None
    name: str = "link-dropout"

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", _normalise_pairs(self.links))

    def apply(self, platform: Platform, value: float) -> Platform:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{self.name} must be a probability in [0, 1], got {value!r}")
        current = platform.faults if platform.faults is not None else FaultProfile()
        dropout = current.link_dropout if current.link_dropout is not None else LinkDropout()
        if self.links is None:
            dropout = replace(dropout, rate=float(value))
        else:
            _selected_links(platform, self.links)
            rates = dict(dropout.rates)
            for pair in self.links:
                rates[pair] = float(value)
            dropout = replace(dropout, rates=tuple(sorted(rates.items())))
        return platform.with_faults(replace(current, link_dropout=dropout))


@dataclass(frozen=True)
class Scenario:
    """A named point in condition space: several axes pinned to values.

    ``weight`` is the scenario's probability mass / importance for
    expectation-style robust objectives (weights need not be normalised).
    """

    name: str
    settings: "tuple[tuple[ConditionAxis, float], ...]" = ()
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.weight < 0:
            raise ValueError("scenario weight must be non-negative")
        object.__setattr__(self, "settings", tuple((axis, float(v)) for axis, v in self.settings))

    def describe(self) -> str:
        """``axis=value`` summary of every pinned condition."""
        if not self.settings:
            return "baseline"
        return ", ".join(axis.describe(value) for axis, value in self.settings)


def apply_conditions(platform: Platform, scenario: Scenario) -> Platform:
    """Derive the platform a scenario describes (pure; the base is untouched).

    Axes apply in ``scenario.settings`` order (they commute unless two axes
    touch the same parameter of the same device/link, in which case the later
    one sees the earlier one's output -- e.g. stacking load on DVFS).  The
    derived platform is renamed ``"<base>@<scenario>"``; an empty scenario
    yields a platform whose cost model is bitwise identical to the base.
    """
    derived = platform
    for axis, value in scenario.settings:
        derived = axis.apply(derived, value)
    return Platform(
        devices=derived.devices,
        links=derived.links,
        host=derived.host,
        name=f"{platform.name}@{scenario.name}",
        faults=derived.faults,
    )
