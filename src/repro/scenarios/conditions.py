"""Condition axes and scenarios: environment drift as first-class objects.

Every layer below this one assumes a frozen :class:`~repro.devices.platform.Platform`;
real deployments drift -- a Wi-Fi link degrades to LTE, a co-located job loads
the CPU, DVFS throttles the clocks, electricity prices move.  A
:class:`ConditionAxis` describes *one* such drift dimension as a pure platform
transformation; a :class:`Scenario` pins several axes to concrete values (one
named point in condition space); :func:`apply_conditions` derives the
scenario's platform through the :meth:`Platform.with_devices` /
:meth:`Platform.with_links` primitives.

Axes carry **two equivalent transforms**.  :meth:`ConditionAxis.apply` is the
scalar reference: ``(platform, value) -> derived platform``.
:meth:`ConditionAxis.scale_arrays` is the vectorized form the fused grid
builder uses: it mutates a :class:`~repro.devices.params.PlatformParams`
bundle in place, scaling whole ``(scenario, device)`` / ``(scenario, link)``
parameter arrays at once.  Elementwise float64 array arithmetic rounds exactly
like the scalar arithmetic in ``apply``, so the two paths agree **bitwise** --
the contract the differential tests pin.  Custom axes may implement ``apply``
only; grid builds containing them transparently fall back to the
materializing path (see :func:`vectorized_axis`).

All axes are value-type dataclasses (picklable, hashable) so scenarios can
cross process boundaries in sharded sweeps, and applying an axis at its
neutral value (scale ``1.0``, interpolation ``t=0`` with matching endpoints)
reproduces the base platform's cost model **bitwise** (multiplying an IEEE-754
double by ``1.0`` is exact); neutral applications short-circuit and return
the base platform object itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..devices.device import DeviceSpec
from ..devices.link import LinkSpec
from ..devices.platform import Platform
from ..faults.models import DeviceFailure, FaultProfile, LinkDropout

if TYPE_CHECKING:
    from ..devices.params import PlatformParams

__all__ = [
    "ConditionAxis",
    "LinkBandwidthScale",
    "LinkLatencyScale",
    "DeviceLoadFactor",
    "DvfsFrequencyScale",
    "EnergyPriceScale",
    "LinkInterpolation",
    "DeviceFailureRate",
    "LinkDropoutRate",
    "Scenario",
    "apply_conditions",
    "vectorized_axis",
]


def _normalise_pairs(
    links: "Sequence[tuple[str, str]] | None",
) -> "tuple[tuple[str, str], ...] | None":
    if links is None:
        return None
    return tuple((a, b) if a <= b else (b, a) for a, b in links)


class ConditionAxis:
    """One dimension of environment drift: ``value -> platform transformation``.

    Subclasses define :meth:`apply`, a pure function from ``(platform, value)``
    to a derived platform, and expose a ``name`` used in scenario labels.

    Subclasses that also implement :meth:`scale_arrays` (on the **same class**
    that defines their ``apply``, so the two transforms evolve together) are
    eligible for the fused grid build: instead of deriving one platform per
    scenario, the builder gathers the base platform's parameters once and
    calls ``scale_arrays`` with the scenario rows and values that pin this
    axis.  The hook must perform the *same* elementwise float arithmetic as
    ``apply`` (and raise the same validation errors), which makes the fused
    tables bitwise identical to the materializing ones.
    """

    name: str = "condition"

    def apply(self, platform: Platform, value: float) -> Platform:  # pragma: no cover
        raise NotImplementedError

    def scale_arrays(
        self, params: "PlatformParams", rows: np.ndarray, values: np.ndarray
    ) -> None:
        """Vectorized form of :meth:`apply` over parameter arrays.

        ``rows`` are the scenario-row indices that pin this axis and
        ``values`` (same length, float64) their axis values; implementations
        mutate ``params.device`` / ``params.link`` arrays in place at those
        rows.  The base class raises: axes without the hook route grid builds
        through the materializing fallback.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the vectorized "
            "scale_arrays hook; grid builds containing this axis fall back "
            "to the materializing path"
        )

    def describe(self, value: float) -> str:
        """Human-readable ``axis=value`` fragment for generated scenario names."""
        return f"{self.name}={value:g}"


def vectorized_axis(axis: ConditionAxis) -> bool:
    """Whether the fused grid builder may use ``axis.scale_arrays``.

    True when the axis implements :meth:`~ConditionAxis.scale_arrays` and the
    defining class is the same one that defines its ``apply`` -- a subclass
    that overrides ``apply`` without re-implementing ``scale_arrays`` (or vice
    versa) would break the bitwise scalar==vectorized contract, so it falls
    back to the materializing path.
    """
    return _vectorized_axis_class(type(axis))


@lru_cache(maxsize=None)
def _vectorized_axis_class(cls: type) -> bool:
    # The MRO walk is pure in the class definition, so grid builds (which ask
    # once per scenario setting) share one verdict per axis class.
    scale_owner = next((k for k in cls.__mro__ if "scale_arrays" in vars(k)), None)
    if scale_owner is None or scale_owner is ConditionAxis:
        return False
    apply_owner = next((k for k in cls.__mro__ if "apply" in vars(k)), None)
    return apply_owner is scale_owner


def _selected_links(
    platform: Platform, links: "tuple[tuple[str, str], ...] | None"
) -> list[tuple[str, str]]:
    if links is None:
        return list(platform.links)
    for a, b in links:
        platform.link(a, b)  # raises with the usual message when absent
    return [(a, b) for (a, b) in links]


def _selected_devices(platform: Platform, devices: "tuple[str, ...] | None") -> list[str]:
    if devices is None:
        return list(platform.devices)
    platform.validate_aliases(devices)
    return list(devices)


def _first_bad(values: np.ndarray, bad: np.ndarray) -> float:
    """The first offending value of a vectorized validation, as a plain float
    so the error message matches the scalar path's ``{value!r}`` exactly."""
    return float(values[bad][0])


@dataclass(frozen=True)
class LinkBandwidthScale(ConditionAxis):
    """Multiply the bandwidth of some links (``None`` = every link) by the value.

    ``value > 1`` is an upgrade, ``value < 1`` congestion/degradation.
    """

    links: "tuple[tuple[str, str], ...] | None" = None
    name: str = "link-bandwidth"

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", _normalise_pairs(self.links))

    def apply(self, platform: Platform, value: float) -> Platform:
        if value <= 0:
            raise ValueError(f"{self.name} scale must be positive, got {value!r}")
        if value == 1.0:
            _selected_links(platform, self.links)  # validate the selection
            return platform
        return platform.with_links(
            {
                pair: replace(link, bandwidth_gbs=link.bandwidth_gbs * value)
                for pair in _selected_links(platform, self.links)
                for link in (platform.link(*pair),)
            }
        )

    def scale_arrays(
        self, params: "PlatformParams", rows: np.ndarray, values: np.ndarray
    ) -> None:
        bad = values <= 0
        if bad.any():
            raise ValueError(
                f"{self.name} scale must be positive, got {_first_bad(values, bad)!r}"
            )
        cols = params.link_columns(self.links)
        params.link["bandwidth_gbs"][np.ix_(rows, cols)] *= values[:, None]


@dataclass(frozen=True)
class LinkLatencyScale(ConditionAxis):
    """Multiply the latency of some links (``None`` = every link) by the value."""

    links: "tuple[tuple[str, str], ...] | None" = None
    name: str = "link-latency"

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", _normalise_pairs(self.links))

    def apply(self, platform: Platform, value: float) -> Platform:
        if value < 0:
            raise ValueError(f"{self.name} scale must be non-negative, got {value!r}")
        if value == 1.0:
            _selected_links(platform, self.links)
            return platform
        return platform.with_links(
            {
                pair: replace(link, latency_s=link.latency_s * value)
                for pair in _selected_links(platform, self.links)
                for link in (platform.link(*pair),)
            }
        )

    def scale_arrays(
        self, params: "PlatformParams", rows: np.ndarray, values: np.ndarray
    ) -> None:
        bad = values < 0
        if bad.any():
            raise ValueError(
                f"{self.name} scale must be non-negative, got {_first_bad(values, bad)!r}"
            )
        cols = params.link_columns(self.links)
        params.link["latency_s"][np.ix_(rows, cols)] *= values[:, None]


@dataclass(frozen=True)
class DeviceLoadFactor(ConditionAxis):
    """Competing load on some devices: value ``L >= 1`` divides the effective
    compute throughput and memory bandwidth by ``L`` (the task gets a ``1/L``
    share of the device)."""

    devices: "tuple[str, ...] | None" = None
    name: str = "device-load"

    def __post_init__(self) -> None:
        if self.devices is not None:
            object.__setattr__(self, "devices", tuple(self.devices))

    def apply(self, platform: Platform, value: float) -> Platform:
        if value < 1:
            raise ValueError(f"{self.name} must be >= 1 (no load), got {value!r}")
        if value == 1.0:
            _selected_devices(platform, self.devices)
            return platform
        return platform.with_devices(
            {
                alias: replace(
                    spec,
                    peak_gflops=spec.peak_gflops / value,
                    memory_bandwidth_gbs=spec.memory_bandwidth_gbs / value,
                )
                for alias in _selected_devices(platform, self.devices)
                for spec in (platform.device(alias),)
            }
        )

    def scale_arrays(
        self, params: "PlatformParams", rows: np.ndarray, values: np.ndarray
    ) -> None:
        bad = values < 1
        if bad.any():
            raise ValueError(
                f"{self.name} must be >= 1 (no load), got {_first_bad(values, bad)!r}"
            )
        ix = np.ix_(rows, params.device_columns(self.devices))
        params.device["peak_gflops"][ix] /= values[:, None]
        params.device["memory_bandwidth_gbs"][ix] /= values[:, None]


@dataclass(frozen=True)
class DvfsFrequencyScale(ConditionAxis):
    """DVFS throttling: frequency factor ``f`` in ``(0, 1]`` scales the peak
    throughput and (to first order, dynamic power being roughly proportional
    to frequency at a fixed voltage step) the active power draw."""

    devices: "tuple[str, ...] | None" = None
    name: str = "dvfs"

    def __post_init__(self) -> None:
        if self.devices is not None:
            object.__setattr__(self, "devices", tuple(self.devices))

    def apply(self, platform: Platform, value: float) -> Platform:
        if not 0 < value <= 1:
            raise ValueError(f"{self.name} frequency factor must lie in (0, 1], got {value!r}")
        if value == 1.0:
            _selected_devices(platform, self.devices)
            return platform
        return platform.with_devices(
            {
                alias: replace(
                    spec,
                    peak_gflops=spec.peak_gflops * value,
                    power_active_w=spec.power_active_w * value,
                )
                for alias in _selected_devices(platform, self.devices)
                for spec in (platform.device(alias),)
            }
        )

    def scale_arrays(
        self, params: "PlatformParams", rows: np.ndarray, values: np.ndarray
    ) -> None:
        bad = (values <= 0) | (values > 1)
        if bad.any():
            raise ValueError(
                f"{self.name} frequency factor must lie in (0, 1], "
                f"got {_first_bad(values, bad)!r}"
            )
        ix = np.ix_(rows, params.device_columns(self.devices))
        params.device["peak_gflops"][ix] *= values[:, None]
        params.device["power_active_w"][ix] *= values[:, None]


@dataclass(frozen=True)
class EnergyPriceScale(ConditionAxis):
    """Multiply the operating cost per hour of some devices by the value
    (spot-price moves, peak-hour tariffs)."""

    devices: "tuple[str, ...] | None" = None
    name: str = "energy-price"

    def __post_init__(self) -> None:
        if self.devices is not None:
            object.__setattr__(self, "devices", tuple(self.devices))

    def apply(self, platform: Platform, value: float) -> Platform:
        if value < 0:
            raise ValueError(f"{self.name} multiplier must be non-negative, got {value!r}")
        if value == 1.0:
            _selected_devices(platform, self.devices)
            return platform
        return platform.with_devices(
            {
                alias: replace(spec, cost_per_hour=spec.cost_per_hour * value)
                for alias in _selected_devices(platform, self.devices)
                for spec in (platform.device(alias),)
            }
        )

    def scale_arrays(
        self, params: "PlatformParams", rows: np.ndarray, values: np.ndarray
    ) -> None:
        bad = values < 0
        if bad.any():
            raise ValueError(
                f"{self.name} multiplier must be non-negative, got {_first_bad(values, bad)!r}"
            )
        ix = np.ix_(rows, params.device_columns(self.devices))
        params.device["cost_per_hour"][ix] *= values[:, None]


def _interpolate(a: float, b: float, t: float) -> float:
    """Geometric interpolation for positive endpoints, linear otherwise.

    Link qualities span orders of magnitude (Wi-Fi -> LTE is 10x bandwidth,
    15x latency), where geometric steps are the natural parameterisation;
    zero-valued endpoints (e.g. a free link) fall back to linear.  Exact at
    the endpoints: ``t=0`` returns ``a`` and ``t=1`` returns ``b``.
    """
    if t == 0.0:
        return a
    if t == 1.0:
        return b
    if a > 0 and b > 0:
        return math.exp((1.0 - t) * math.log(a) + t * math.log(b))
    return (1.0 - t) * a + t * b


@dataclass(frozen=True)
class LinkInterpolation(ConditionAxis):
    """Morph some links between two reference specs: value ``t`` in ``[0, 1]``.

    ``t=0`` installs ``start`` verbatim, ``t=1`` installs ``end``; in between,
    bandwidth/latency/energy-per-byte interpolate geometrically (linear when
    an endpoint is zero).  This is the wifi->lte degradation axis of the
    robustness experiment.
    """

    links: "tuple[tuple[str, str], ...]" = ()
    start: LinkSpec = None  # type: ignore[assignment]
    end: LinkSpec = None  # type: ignore[assignment]
    name: str = "link-quality"

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("LinkInterpolation needs at least one link pair")
        if self.start is None or self.end is None:
            raise ValueError("LinkInterpolation needs both start and end LinkSpecs")
        object.__setattr__(self, "links", _normalise_pairs(self.links))

    def _spec_at(self, value: float) -> LinkSpec:
        """The interpolated spec at parameter ``value`` (shared by both the
        scalar and vectorized paths so they agree bitwise)."""
        if value == 0.0:
            return self.start
        if value == 1.0:
            return self.end
        return LinkSpec(
            name=f"{self.start.name}~{value:.3g}~{self.end.name}",
            bandwidth_gbs=_interpolate(self.start.bandwidth_gbs, self.end.bandwidth_gbs, value),
            latency_s=_interpolate(self.start.latency_s, self.end.latency_s, value),
            energy_per_byte_j=_interpolate(
                self.start.energy_per_byte_j, self.end.energy_per_byte_j, value
            ),
        )

    def apply(self, platform: Platform, value: float) -> Platform:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{self.name} interpolation parameter must lie in [0, 1], got {value!r}")
        spec = self._spec_at(value)
        pairs = _selected_links(platform, self.links)
        if all(platform.link(*pair) == spec for pair in pairs):
            return platform
        return platform.with_links({pair: spec for pair in pairs})

    def scale_arrays(
        self, params: "PlatformParams", rows: np.ndarray, values: np.ndarray
    ) -> None:
        bad = (values < 0.0) | (values > 1.0)
        if bad.any():
            raise ValueError(
                f"{self.name} interpolation parameter must lie in [0, 1], "
                f"got {_first_bad(values, bad)!r}"
            )
        cols = params.link_columns(self.links)
        # This axis *installs* values rather than scaling them, so the spec is
        # computed once per distinct parameter through the same scalar helper
        # as apply() and assigned to the matching scenario rows.
        for v in np.unique(values):
            spec = self._spec_at(float(v))
            ix = np.ix_(rows[values == v], cols)
            params.link["bandwidth_gbs"][ix] = spec.bandwidth_gbs
            params.link["latency_s"][ix] = spec.latency_s
            params.link["energy_per_byte_j"][ix] = spec.energy_per_byte_j


@dataclass(frozen=True)
class DeviceFailureRate(ConditionAxis):
    """Per-task-execution failure probability of some devices (``None`` = all).

    A *failure-regime* axis: the value becomes the
    :class:`~repro.faults.models.DeviceFailure` probability of the selected
    devices in the derived platform's attached
    :class:`~repro.faults.models.FaultProfile` (other profile components --
    link dropout, stragglers, other devices' rates -- carry over), so a
    :class:`ScenarioGrid` sweeps failure rates exactly the way it sweeps
    bandwidth or clocks.  Value ``0`` reproduces fault-free evaluation.
    """

    devices: "tuple[str, ...] | None" = None
    name: str = "device-failure"

    def __post_init__(self) -> None:
        if self.devices is not None:
            object.__setattr__(self, "devices", tuple(self.devices))

    def apply(self, platform: Platform, value: float) -> Platform:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{self.name} must be a probability in [0, 1], got {value!r}")
        current = platform.faults if platform.faults is not None else FaultProfile()
        failure = current.device_failure if current.device_failure is not None else DeviceFailure()
        if self.devices is None:
            failure = replace(failure, rate=float(value))
        else:
            _selected_devices(platform, self.devices)
            rates = dict(failure.rates)
            for alias in self.devices:
                rates[alias] = float(value)
            failure = replace(failure, rates=tuple(sorted(rates.items())))
        profile = replace(current, device_failure=failure)
        if platform.faults == profile:
            return platform
        return platform.with_faults(profile)

    def scale_arrays(
        self, params: "PlatformParams", rows: np.ndarray, values: np.ndarray
    ) -> None:
        # Failure rates live in the derived FaultProfile, not in any cost
        # parameter, so this axis is a cost-table no-op: fault-grid layers
        # re-derive the per-scenario profiles from the lazily applied
        # platforms.  Validation still mirrors apply().
        bad = (values < 0.0) | (values > 1.0)
        if bad.any():
            raise ValueError(
                f"{self.name} must be a probability in [0, 1], "
                f"got {_first_bad(values, bad)!r}"
            )
        if self.devices is not None:
            params.device_columns(self.devices)


@dataclass(frozen=True)
class LinkDropoutRate(ConditionAxis):
    """Per-transfer drop probability of some links (``None`` = every pair).

    The value becomes the :class:`~repro.faults.models.LinkDropout`
    probability of the selected link pairs in the derived platform's attached
    fault profile; every dropped transfer fails the attempt that issued it
    and is re-paid on retry.  Value ``0`` reproduces fault-free evaluation.
    """

    links: "tuple[tuple[str, str], ...] | None" = None
    name: str = "link-dropout"

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", _normalise_pairs(self.links))

    def apply(self, platform: Platform, value: float) -> Platform:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{self.name} must be a probability in [0, 1], got {value!r}")
        current = platform.faults if platform.faults is not None else FaultProfile()
        dropout = current.link_dropout if current.link_dropout is not None else LinkDropout()
        if self.links is None:
            dropout = replace(dropout, rate=float(value))
        else:
            _selected_links(platform, self.links)
            rates = dict(dropout.rates)
            for pair in self.links:
                rates[pair] = float(value)
            dropout = replace(dropout, rates=tuple(sorted(rates.items())))
        profile = replace(current, link_dropout=dropout)
        if platform.faults == profile:
            return platform
        return platform.with_faults(profile)

    def scale_arrays(
        self, params: "PlatformParams", rows: np.ndarray, values: np.ndarray
    ) -> None:
        # Like DeviceFailureRate: profile-only, no cost parameter moves.
        bad = (values < 0.0) | (values > 1.0)
        if bad.any():
            raise ValueError(
                f"{self.name} must be a probability in [0, 1], "
                f"got {_first_bad(values, bad)!r}"
            )
        if self.links is not None:
            params.link_columns(self.links)


@dataclass(frozen=True)
class Scenario:
    """A named point in condition space: several axes pinned to values.

    ``weight`` is the scenario's probability mass / importance for
    expectation-style robust objectives (weights need not be normalised).
    """

    name: str
    settings: "tuple[tuple[ConditionAxis, float], ...]" = ()
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        # NaN compares False against every bound, so `weight < 0` alone would
        # wave non-finite weights through into weighted reductions.
        if not math.isfinite(self.weight) or self.weight < 0:
            raise ValueError(
                f"scenario weight must be finite and non-negative, got {self.weight!r}"
            )
        object.__setattr__(self, "settings", tuple((axis, float(v)) for axis, v in self.settings))

    def describe(self) -> str:
        """``axis=value`` summary of every pinned condition."""
        if not self.settings:
            return "baseline"
        return ", ".join(axis.describe(value) for axis, value in self.settings)


def apply_conditions(platform: Platform, scenario: Scenario) -> Platform:
    """Derive the platform a scenario describes (pure; the base is untouched).

    Axes apply in ``scenario.settings`` order (they commute unless two axes
    touch the same parameter of the same device/link, in which case the later
    one sees the earlier one's output -- e.g. stacking load on DVFS).  The
    derived platform is renamed ``"<base>@<scenario>"``; a scenario whose
    axes all short-circuit at their neutral values (and an empty scenario)
    returns the base platform object itself, unrenamed -- the cost model is
    identical, and skipping the copy chain keeps identity points free.
    """
    derived = platform
    for axis, value in scenario.settings:
        derived = axis.apply(derived, value)
    if derived is platform:
        return platform
    return Platform(
        devices=derived.devices,
        links=derived.links,
        host=derived.host,
        name=f"{platform.name}@{scenario.name}",
        faults=derived.faults,
    )
