"""repro -- Relative performance analysis for scientific computations on the edge.

Reproduction of "Performance Comparison for Scientific Computations on the
Edge via Relative Performance" (Sankaran & Bientinesi, IPPS 2021).

The package is organised as:

* :mod:`repro.core` -- the paper's contribution: three-way comparators,
  bubble sort with rank merging, relative-score clustering, baselines.
* :mod:`repro.measurement` -- measurement harness, datasets, noise injectors.
* :mod:`repro.devices` -- simulated heterogeneous platform (edge devices,
  accelerators, interconnects, energy) plus a host-based executor.
* :mod:`repro.cache` -- content fingerprints (SHA-256 over canonical
  encodings) and the bounded LRU ``TableCache`` behind cost-table reuse.
* :mod:`repro.tasks` -- linear-algebra workloads (GEMM / Regularised Least
  Squares loops), FLOP accounting, scientific-code task chains and DAGs.
* :mod:`repro.offload` -- the algorithm space induced by splitting a task
  chain (or graph) between devices.
* :mod:`repro.scenarios` -- condition-parameterized platforms: environment
  drift (link degradation, load, DVFS, prices) as scenario grids.
* :mod:`repro.selection` -- decision models for algorithm selection (cost /
  FLOPs / energy-aware switching / robust-across-drift).
* :mod:`repro.search` -- streaming search & selection over huge placement
  spaces (top-K, incremental Pareto frontier, constraints, sharded sweeps,
  robust grid search).
* :mod:`repro.service` -- the placement-query serving layer:
  ``PlacementService`` routes ``PlacementRequest`` objects planner-or-stream
  and serves repeated queries from content-addressed caches.
* :mod:`repro.experiments` -- one runner per paper table/figure.
* :mod:`repro.reporting` -- text tables, ASCII histograms, CSV export.

Quickstart::

    from repro import RelativePerformanceAnalyzer
    analyzer = RelativePerformanceAnalyzer(seed=0)
    result = analyzer.analyze({"DD": times_dd, "DA": times_da})
    print(result.summary())
"""

from .core import (
    AnalysisResult,
    BootstrapComparator,
    CachedCompareFn,
    Comparator,
    Comparison,
    ComparisonEngine,
    FinalClustering,
    MannWhitneyComparator,
    MeanComparator,
    MedianComparator,
    MinimumComparator,
    PairwiseOracle,
    RelativePerformanceAnalyzer,
    ScoreTable,
    SortResult,
    bind_comparator,
    cluster_algorithms,
    final_assignment,
    relative_scores,
    three_way_bubble_sort,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "RelativePerformanceAnalyzer",
    "AnalysisResult",
    "BootstrapComparator",
    "Comparator",
    "Comparison",
    "MeanComparator",
    "MedianComparator",
    "MinimumComparator",
    "MannWhitneyComparator",
    "PairwiseOracle",
    "ScoreTable",
    "FinalClustering",
    "SortResult",
    "ComparisonEngine",
    "CachedCompareFn",
    "three_way_bubble_sort",
    "relative_scores",
    "final_assignment",
    "cluster_algorithms",
    "bind_comparator",
]
