"""Timers and single-callable measurement helpers.

The paper's methodology is measurement-based: every algorithm is executed and
timed ``N`` times.  This module provides the wall-clock / CPU-time timers and
a :func:`measure_callable` helper with warm-up handling, which the
:class:`~repro.measurement.runner.MeasurementRunner` builds on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Timer", "WallClockTimer", "ProcessTimeTimer", "measure_callable"]


@dataclass(frozen=True)
class Timer:
    """A named source of monotonically increasing timestamps (in seconds)."""

    name: str
    now: Callable[[], float]

    def time(self, fn: Callable[[], object]) -> float:
        """Execute ``fn`` once and return its duration in seconds."""
        start = self.now()
        fn()
        return self.now() - start


#: Wall-clock timer (includes time spent waiting on accelerators / I/O).
WallClockTimer = Timer(name="perf_counter", now=time.perf_counter)

#: CPU-time timer (excludes sleeps; useful to separate compute from waiting).
ProcessTimeTimer = Timer(name="process_time", now=time.process_time)


def measure_callable(
    fn: Callable[[], object],
    repetitions: int,
    warmup: int = 1,
    timer: Timer = WallClockTimer,
) -> np.ndarray:
    """Execute ``fn`` ``warmup + repetitions`` times and return the timed repetitions.

    Warm-up executions absorb one-time effects (JIT, caches, lazy allocations)
    that the paper's cited work identifies as a major source of measurement
    noise; their durations are discarded.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    for _ in range(warmup):
        fn()
    times = np.empty(repetitions, dtype=float)
    for i in range(repetitions):
        times[i] = timer.time(fn)
    return times
