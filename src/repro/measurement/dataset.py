"""Measurement containers.

A :class:`MeasurementSet` holds, for every algorithm label, the raw vector of
repeated performance measurements (execution times, energies, ...).  It is the
object handed to :class:`repro.core.analyzer.RelativePerformanceAnalyzer` and
produced by the measurement runners and the device simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..core.types import Label

__all__ = ["MeasurementSet", "MeasurementSummary"]


@dataclass(frozen=True)
class MeasurementSummary:
    """Classical summary statistics of one algorithm's measurement distribution."""

    label: Label
    n: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    @property
    def coefficient_of_variation(self) -> float:
        """Relative dispersion (std / mean); 0 for a perfectly stable measurement."""
        return self.std / self.mean if self.mean != 0 else float("inf")

    def as_row(self) -> tuple:
        return (
            self.label,
            self.n,
            self.mean,
            self.std,
            self.minimum,
            self.q25,
            self.median,
            self.q75,
            self.maximum,
        )


class MeasurementSet:
    """Mapping from algorithm label to a 1-D array of repeated measurements.

    Parameters
    ----------
    data:
        Optional initial ``label -> measurements`` mapping.
    metric:
        Name of the measured quantity (e.g. ``"execution time"``).
    unit:
        Unit of the measurements (e.g. ``"s"``).
    require_positive:
        If True (default), non-positive measurements are rejected -- execution
        times and energies are strictly positive quantities.
    """

    def __init__(
        self,
        data: Mapping[Label, Sequence[float] | np.ndarray] | None = None,
        metric: str = "execution time",
        unit: str = "s",
        require_positive: bool = True,
    ) -> None:
        self.metric = metric
        self.unit = unit
        self.require_positive = require_positive
        self._data: dict[Label, np.ndarray] = {}
        if data is not None:
            for label, values in data.items():
                self.add(label, values)

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_matrix(
        cls,
        labels: Sequence[Label],
        matrix: np.ndarray,
        metric: str = "execution time",
        unit: str = "s",
        require_positive: bool = True,
    ) -> "MeasurementSet":
        """Build a set from one matrix row of measurements per label.

        Equivalent to :meth:`add`-ing every ``(label, row)`` pair, but the
        validation (finiteness, positivity) runs as a single vectorized pass
        over the whole matrix -- the fast path used by the batch simulation
        engine for large placement spaces.  The stored vectors are views into
        ``matrix``.
        """
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got shape {np.shape(matrix)}")
        if len(labels) != data.shape[0]:
            raise ValueError(f"got {len(labels)} labels for {data.shape[0]} matrix rows")
        if data.shape[1] == 0:
            raise ValueError("measurements must not be empty")
        if len(set(labels)) != len(labels):
            raise ValueError("labels must be unique")
        if not np.all(np.isfinite(data)):
            raise ValueError(f"measurements for metric {metric!r} contain non-finite values")
        if require_positive and np.any(data <= 0):
            raise ValueError(f"measurements for metric {metric!r} must be strictly positive")
        out = cls(metric=metric, unit=unit, require_positive=require_positive)
        out._data = dict(zip(labels, data))
        return out

    def _validate(self, label: Label, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError(f"measurements for {label!r} must not be empty")
        if not np.all(np.isfinite(arr)):
            raise ValueError(f"measurements for {label!r} contain non-finite values")
        if self.require_positive and np.any(arr <= 0):
            raise ValueError(f"measurements for {label!r} must be strictly positive")
        return arr

    def add(self, label: Label, values: Sequence[float] | np.ndarray) -> None:
        """Add (or replace) the full measurement vector of one algorithm."""
        self._data[label] = self._validate(label, np.asarray(values, dtype=float))

    def record(self, label: Label, value: float) -> None:
        """Append a single measurement to an algorithm (creating it if needed)."""
        single = self._validate(label, np.asarray([value], dtype=float))
        if label in self._data:
            self._data[label] = np.concatenate([self._data[label], single])
        else:
            self._data[label] = single

    def extend(self, label: Label, values: Sequence[float] | np.ndarray) -> None:
        """Append several measurements to an algorithm (creating it if needed)."""
        arr = self._validate(label, np.asarray(values, dtype=float))
        if label in self._data:
            self._data[label] = np.concatenate([self._data[label], arr])
        else:
            self._data[label] = arr

    def merge(self, other: "MeasurementSet") -> "MeasurementSet":
        """Return a new set containing the union of both (other wins on clashes)."""
        merged = MeasurementSet(metric=self.metric, unit=self.unit, require_positive=self.require_positive)
        for label in self.labels:
            merged.add(label, self[label])
        for label in other.labels:
            merged.add(label, other[label])
        return merged

    def subset(self, labels: Iterable[Label]) -> "MeasurementSet":
        """Return a new set restricted to the given labels (order preserved)."""
        out = MeasurementSet(metric=self.metric, unit=self.unit, require_positive=self.require_positive)
        for label in labels:
            out.add(label, self[label])
        return out

    # -- mapping interface --------------------------------------------------------
    def __getitem__(self, label: Label) -> np.ndarray:
        return self._data[label]

    def __contains__(self, label: Label) -> bool:
        return label in self._data

    def __iter__(self) -> Iterator[Label]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def items(self):
        return self._data.items()

    @property
    def labels(self) -> list[Label]:
        return list(self._data)

    def n_measurements(self, label: Label) -> int:
        return int(self._data[label].size)

    def as_dict(self) -> dict[Label, np.ndarray]:
        """Plain-dict view (arrays are not copied)."""
        return dict(self._data)

    # -- statistics ----------------------------------------------------------------
    def summary(self, label: Label) -> MeasurementSummary:
        """Summary statistics of one algorithm's distribution."""
        values = self._data[label]
        q25, median, q75 = np.quantile(values, [0.25, 0.5, 0.75])
        return MeasurementSummary(
            label=label,
            n=int(values.size),
            mean=float(values.mean()),
            std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
            minimum=float(values.min()),
            q25=float(q25),
            median=float(median),
            q75=float(q75),
            maximum=float(values.max()),
        )

    def summaries(self) -> list[MeasurementSummary]:
        """Summary statistics for every algorithm in insertion order."""
        return [self.summary(label) for label in self._data]

    def mean(self, label: Label) -> float:
        return float(self._data[label].mean())

    def speedup(self, baseline: Label, label: Label) -> float:
        """Mean-speedup of ``label`` relative to ``baseline`` (>1 means faster)."""
        return self.mean(baseline) / self.mean(label)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = {label: arr.size for label, arr in self._data.items()}
        return f"MeasurementSet(metric={self.metric!r}, unit={self.unit!r}, n={sizes})"
