"""Measurement-noise models for the simulated platform.

Repeated measurements of the same algorithm fluctuate because of system noise
(OS jitter, caching, clock frequency changes, contention).  The simulated
devices reproduce this by passing their noise-free execution-time estimate
through a :class:`NoiseModel`, which turns one base value into a vector of
``N`` noisy measurements.  Models compose, and every model is a pure function
of the provided random generator, so simulated experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "NoiseModel",
    "NoNoise",
    "LognormalNoise",
    "GaussianNoise",
    "OutlierNoise",
    "DriftNoise",
    "AdditiveJitter",
    "CompositeNoise",
    "default_system_noise",
]


class NoiseModel:
    """Base class: turn a noise-free base time into ``n`` noisy samples."""

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` noisy measurements derived from ``base`` (seconds)."""
        raise NotImplementedError

    def sample_from(self, samples: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Transform an array of base values into noisy values, vectorized.

        This is the composition hook used by :class:`CompositeNoise` and the
        batch simulation engine: ``samples`` may have any shape, and the model
        must treat every element as an independent base value (positional
        models such as :class:`DriftNoise` interpret the *last* axis as the
        repetition index).  The default implementation falls back to one
        scalar draw per element; subclasses override it with a single
        vectorized draw.
        """
        array = np.asarray(samples, dtype=float)
        flat = np.array([self(value, 1, rng)[0] for value in array.ravel()])
        return flat.reshape(array.shape)

    def __call__(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        if base <= 0:
            raise ValueError("base time must be positive")
        if n <= 0:
            raise ValueError("number of samples must be positive")
        samples = self.sample(float(base), int(n), rng)
        # Measurements are physical durations: never allow zero/negative values.
        return np.maximum(samples, 1e-12)

    def sample_many(
        self, bases: Sequence[float] | np.ndarray, repetitions: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Matrix of noisy measurements: one row of ``repetitions`` values per base.

        Statistically identical to calling the model once per base value, but
        every noise stage draws its randomness in one shot over the whole
        ``(len(bases), repetitions)`` matrix -- so the random stream differs
        from the per-base path.  Used by the batch measurement engine's
        ``rng_mode="batched"``.
        """
        base_array = np.asarray(bases, dtype=float)
        if base_array.ndim != 1 or base_array.size == 0:
            raise ValueError("bases must be a non-empty 1-D array")
        if np.any(base_array <= 0):
            raise ValueError("base times must be positive")
        if repetitions <= 0:
            raise ValueError("number of samples must be positive")
        # Read-only broadcast view: the first noise stage materialises it.
        samples = np.broadcast_to(base_array[:, None], (base_array.size, int(repetitions)))
        return np.maximum(self.sample_from(samples, rng), 1e-12)


@dataclass(frozen=True)
class NoNoise(NoiseModel):
    """Deterministic model: every measurement equals the base time."""

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, base)

    def sample_from(self, samples: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.asarray(samples, dtype=float)


@dataclass(frozen=True)
class LognormalNoise(NoiseModel):
    """Multiplicative lognormal noise, the classic model for timing variability.

    ``sigma`` is the standard deviation of the underlying normal in log-space;
    a value of 0.05 corresponds to roughly +/-5% run-to-run variation.
    """

    sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        return base * rng.lognormal(mean=0.0, sigma=self.sigma, size=n)

    def sample_from(self, samples: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        factors = rng.lognormal(mean=0.0, sigma=self.sigma, size=np.shape(samples))
        factors *= samples  # in place into the freshly drawn array
        return factors


@dataclass(frozen=True)
class GaussianNoise(NoiseModel):
    """Multiplicative Gaussian noise with relative standard deviation ``rel_sigma``."""

    rel_sigma: float = 0.03

    def __post_init__(self) -> None:
        if self.rel_sigma < 0:
            raise ValueError("rel_sigma must be non-negative")

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        return base * (1.0 + rng.normal(0.0, self.rel_sigma, size=n))

    def sample_from(self, samples: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return samples * (1.0 + rng.normal(0.0, self.rel_sigma, size=np.shape(samples)))


@dataclass(frozen=True)
class OutlierNoise(NoiseModel):
    """Occasional slow runs (cache misses, page faults, preemption).

    With probability ``probability`` a measurement is multiplied by ``scale``.
    """

    probability: float = 0.02
    scale: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        if self.scale < 1.0:
            raise ValueError("scale must be >= 1 (outliers are slow-downs)")

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        factors = np.where(rng.random(n) < self.probability, self.scale, 1.0)
        return base * factors

    def sample_from(self, samples: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        factors = np.where(rng.random(np.shape(samples)) < self.probability, self.scale, 1.0)
        factors *= samples  # in place into the where-allocated array
        return factors


@dataclass(frozen=True)
class DriftNoise(NoiseModel):
    """Slow monotone drift across the measurement campaign (e.g. thermal throttling).

    The ``i``-th measurement is scaled by ``1 + total_drift * i / (n - 1)``.
    """

    total_drift: float = 0.05

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        if n == 1:
            return np.array([base])
        ramp = 1.0 + self.total_drift * np.arange(n) / (n - 1)
        return base * ramp

    def sample_from(self, samples: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        # Positional model: the last axis is the repetition index of the campaign.
        n = np.shape(samples)[-1]
        if n == 1:
            return np.asarray(samples, dtype=float)
        ramp = 1.0 + self.total_drift * np.arange(n) / (n - 1)
        return samples * ramp


@dataclass(frozen=True)
class AdditiveJitter(NoiseModel):
    """Absolute OS jitter added to every measurement (seconds), exponentially distributed."""

    scale_seconds: float = 1e-4

    def __post_init__(self) -> None:
        if self.scale_seconds < 0:
            raise ValueError("scale_seconds must be non-negative")

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        return base + rng.exponential(self.scale_seconds, size=n)

    def sample_from(self, samples: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        jitter = rng.exponential(self.scale_seconds, size=np.shape(samples))
        jitter += samples  # in place into the freshly drawn array
        return jitter


@dataclass(frozen=True)
class CompositeNoise(NoiseModel):
    """Apply several noise models in sequence (each transforms the previous samples).

    Multiplicative models compose naturally; every stage transforms the whole
    sample array of the previous stage through its vectorized
    :meth:`NoiseModel.sample_from` hook (custom models without a vectorized
    hook inherit the per-sample fallback of the base class).
    """

    models: Sequence[NoiseModel] = field(default_factory=tuple)

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.sample_from(np.full(n, base), rng)

    def sample_from(self, samples: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for model in self.models:
            samples = model.sample_from(samples, rng)
        return samples


def default_system_noise(level: float = 1.0) -> CompositeNoise:
    """A realistic default: lognormal variability, rare outliers and OS jitter.

    ``level`` scales the overall noisiness (1.0 is the calibration used for the
    paper-shaped experiments; larger values make distributions overlap more).
    """
    if level < 0:
        raise ValueError("level must be non-negative")
    return CompositeNoise(
        (
            LognormalNoise(sigma=0.04 * level),
            OutlierNoise(probability=min(0.03 * level, 1.0), scale=1.5),
            AdditiveJitter(scale_seconds=2e-4 * level),
        )
    )
