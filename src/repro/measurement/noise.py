"""Measurement-noise models for the simulated platform.

Repeated measurements of the same algorithm fluctuate because of system noise
(OS jitter, caching, clock frequency changes, contention).  The simulated
devices reproduce this by passing their noise-free execution-time estimate
through a :class:`NoiseModel`, which turns one base value into a vector of
``N`` noisy measurements.  Models compose, and every model is a pure function
of the provided random generator, so simulated experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "NoiseModel",
    "NoNoise",
    "LognormalNoise",
    "GaussianNoise",
    "OutlierNoise",
    "DriftNoise",
    "AdditiveJitter",
    "CompositeNoise",
    "default_system_noise",
]


class NoiseModel:
    """Base class: turn a noise-free base time into ``n`` noisy samples."""

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` noisy measurements derived from ``base`` (seconds)."""
        raise NotImplementedError

    def __call__(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        if base <= 0:
            raise ValueError("base time must be positive")
        if n <= 0:
            raise ValueError("number of samples must be positive")
        samples = self.sample(float(base), int(n), rng)
        # Measurements are physical durations: never allow zero/negative values.
        return np.maximum(samples, 1e-12)


@dataclass(frozen=True)
class NoNoise(NoiseModel):
    """Deterministic model: every measurement equals the base time."""

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, base)


@dataclass(frozen=True)
class LognormalNoise(NoiseModel):
    """Multiplicative lognormal noise, the classic model for timing variability.

    ``sigma`` is the standard deviation of the underlying normal in log-space;
    a value of 0.05 corresponds to roughly +/-5% run-to-run variation.
    """

    sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        return base * rng.lognormal(mean=0.0, sigma=self.sigma, size=n)


@dataclass(frozen=True)
class GaussianNoise(NoiseModel):
    """Multiplicative Gaussian noise with relative standard deviation ``rel_sigma``."""

    rel_sigma: float = 0.03

    def __post_init__(self) -> None:
        if self.rel_sigma < 0:
            raise ValueError("rel_sigma must be non-negative")

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        return base * (1.0 + rng.normal(0.0, self.rel_sigma, size=n))


@dataclass(frozen=True)
class OutlierNoise(NoiseModel):
    """Occasional slow runs (cache misses, page faults, preemption).

    With probability ``probability`` a measurement is multiplied by ``scale``.
    """

    probability: float = 0.02
    scale: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        if self.scale < 1.0:
            raise ValueError("scale must be >= 1 (outliers are slow-downs)")

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        factors = np.where(rng.random(n) < self.probability, self.scale, 1.0)
        return base * factors


@dataclass(frozen=True)
class DriftNoise(NoiseModel):
    """Slow monotone drift across the measurement campaign (e.g. thermal throttling).

    The ``i``-th measurement is scaled by ``1 + total_drift * i / (n - 1)``.
    """

    total_drift: float = 0.05

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        if n == 1:
            return np.array([base])
        ramp = 1.0 + self.total_drift * np.arange(n) / (n - 1)
        return base * ramp


@dataclass(frozen=True)
class AdditiveJitter(NoiseModel):
    """Absolute OS jitter added to every measurement (seconds), exponentially distributed."""

    scale_seconds: float = 1e-4

    def __post_init__(self) -> None:
        if self.scale_seconds < 0:
            raise ValueError("scale_seconds must be non-negative")

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        return base + rng.exponential(self.scale_seconds, size=n)


@dataclass(frozen=True)
class CompositeNoise(NoiseModel):
    """Apply several noise models in sequence (each transforms the previous samples).

    Multiplicative models compose naturally; the composite applies each model
    to the *mean-preserved* base of the previous stage by feeding every sample
    through the next stage individually.
    """

    models: Sequence[NoiseModel] = field(default_factory=tuple)

    def sample(self, base: float, n: int, rng: np.random.Generator) -> np.ndarray:
        samples = np.full(n, base)
        for model in self.models:
            # Vectorised composition: treat each current sample as the base of the
            # next stage and draw exactly one value for it.
            transformed = np.empty(n)
            # Draw stage-specific randomness in one shot where possible by using
            # the model on the mean and rescaling; fall back to per-sample calls
            # only for inherently positional models such as DriftNoise.
            if isinstance(model, DriftNoise):
                ramp = model.sample(1.0, n, rng)
                transformed = samples * ramp
            elif isinstance(model, AdditiveJitter):
                transformed = samples + rng.exponential(model.scale_seconds, size=n)
            elif isinstance(model, OutlierNoise):
                factors = np.where(rng.random(n) < model.probability, model.scale, 1.0)
                transformed = samples * factors
            elif isinstance(model, LognormalNoise):
                transformed = samples * rng.lognormal(0.0, model.sigma, size=n)
            elif isinstance(model, GaussianNoise):
                transformed = samples * (1.0 + rng.normal(0.0, model.rel_sigma, size=n))
            elif isinstance(model, NoNoise):
                transformed = samples
            else:
                transformed = np.array([model(s, 1, rng)[0] for s in samples])
            samples = transformed
        return samples


def default_system_noise(level: float = 1.0) -> CompositeNoise:
    """A realistic default: lognormal variability, rare outliers and OS jitter.

    ``level`` scales the overall noisiness (1.0 is the calibration used for the
    paper-shaped experiments; larger values make distributions overlap more).
    """
    if level < 0:
        raise ValueError("level must be non-negative")
    return CompositeNoise(
        (
            LognormalNoise(sigma=0.04 * level),
            OutlierNoise(probability=min(0.03 * level, 1.0), scale=1.5),
            AdditiveJitter(scale_seconds=2e-4 * level),
        )
    )
