"""Measurement campaign runner.

Given a set of *measurable* algorithms (callables), the runner executes each
one ``repetitions`` times and collects the timings into a
:class:`~repro.measurement.dataset.MeasurementSet`.  The execution order can be
interleaved (round-robin or shuffled) so that slow drifts of the machine state
(thermal throttling, background load) affect all algorithms alike instead of
biasing whichever algorithm happens to be measured last -- one of the
measurement-hygiene points raised by the papers cited in Section I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal, Mapping

import numpy as np

from ..core.types import Label
from .dataset import MeasurementSet
from .timers import Timer, WallClockTimer

__all__ = ["MeasurementRunner"]

Schedule = Literal["grouped", "round-robin", "shuffled"]


@dataclass
class MeasurementRunner:
    """Execute and time a table of callables.

    Parameters
    ----------
    repetitions:
        Number of timed executions per algorithm (the paper uses ``N = 30`` for
        Table I and ``N = 500`` for Figure 1b).
    warmup:
        Untimed executions per algorithm before measurement starts.
    timer:
        Timestamp source.
    schedule:
        ``"grouped"`` measures one algorithm completely before the next;
        ``"round-robin"`` cycles through the algorithms; ``"shuffled"``
        randomises the full execution order.
    seed:
        Seed for the shuffled schedule.
    metric / unit:
        Metadata stored on the resulting :class:`MeasurementSet`.
    """

    repetitions: int = 30
    warmup: int = 1
    timer: Timer = WallClockTimer
    schedule: Schedule = "round-robin"
    seed: int | None = 0
    metric: str = "execution time"
    unit: str = "s"

    def __post_init__(self) -> None:
        if self.repetitions <= 0:
            raise ValueError("repetitions must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.schedule not in ("grouped", "round-robin", "shuffled"):
            raise ValueError(f"unknown schedule {self.schedule!r}")

    def _execution_order(self, labels: list[Label]) -> list[Label]:
        """Sequence of labels to execute, one entry per timed run."""
        if self.schedule == "grouped":
            order = [label for label in labels for _ in range(self.repetitions)]
        elif self.schedule == "round-robin":
            order = [label for _ in range(self.repetitions) for label in labels]
        else:  # shuffled
            order = [label for label in labels for _ in range(self.repetitions)]
            np.random.default_rng(self.seed).shuffle(order)
        return order

    def collect(self, algorithms: Mapping[Label, Callable[[], object]]) -> MeasurementSet:
        """Measure every algorithm and return the collected measurement set."""
        if not algorithms:
            raise ValueError("at least one algorithm is required")
        labels = list(algorithms)
        # Warm-up phase: absorb one-time costs before any timing happens.
        for label in labels:
            fn = algorithms[label]
            for _ in range(self.warmup):
                fn()
        # Buffer the per-label values in lists and materialise each vector once
        # at the end: appending to the MeasurementSet per measurement would
        # re-concatenate the full array every time (O(n^2) in the repetitions).
        buffers: dict[Label, list[float]] = {}
        for label in self._execution_order(labels):
            duration = self.timer.time(algorithms[label])
            buffers.setdefault(label, []).append(max(duration, 1e-12))
        measurements = MeasurementSet(metric=self.metric, unit=self.unit)
        for label, values in buffers.items():
            measurements.extend(label, values)
        return measurements
