"""Measurement harness: datasets, timers, runners and noise models."""

from .dataset import MeasurementSet, MeasurementSummary
from .noise import (
    AdditiveJitter,
    CompositeNoise,
    DriftNoise,
    GaussianNoise,
    LognormalNoise,
    NoiseModel,
    NoNoise,
    OutlierNoise,
    default_system_noise,
)
from .runner import MeasurementRunner
from .timers import ProcessTimeTimer, Timer, WallClockTimer, measure_callable

__all__ = [
    "MeasurementSet",
    "MeasurementSummary",
    "MeasurementRunner",
    "Timer",
    "WallClockTimer",
    "ProcessTimeTimer",
    "measure_callable",
    "NoiseModel",
    "NoNoise",
    "LognormalNoise",
    "GaussianNoise",
    "OutlierNoise",
    "DriftNoise",
    "AdditiveJitter",
    "CompositeNoise",
    "default_system_noise",
]
