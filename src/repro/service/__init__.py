"""repro.service -- the placement-query serving layer.

A :class:`PlacementService` answers :class:`PlacementRequest` queries --
"place this workload on that platform under this objective" -- by routing
through the exact DP planner or the streaming enumerator (the same
``method='auto'`` dispatch the search layer uses) while serving every cost
table from one shared content-addressed :class:`~repro.cache.TableCache`.
See :mod:`repro.service.placement` for the full routing contract.
"""

from .placement import (
    METHODS,
    OBJECTIVE_METRICS,
    CacheInfo,
    PlacementRequest,
    PlacementResponse,
    PlacementService,
)

__all__ = [
    "METHODS",
    "OBJECTIVE_METRICS",
    "CacheInfo",
    "PlacementRequest",
    "PlacementResponse",
    "PlacementService",
]
