"""The placement-query serving layer: one request in, one placement out.

A :class:`PlacementService` answers repeated placement queries over a pool of
platforms from one shared content-addressed :class:`~repro.cache.TableCache`:
the first query for a (workload, platform, scenario, fault) configuration
builds its cost tables through :func:`repro.devices.tables.build_tables`, and
every later query with the same *content* -- across object identities,
process restarts notwithstanding equal inputs -- is served from the cache.

Each :class:`PlacementRequest` is routed through the existing engine
dispatch:

* plain requests (no scenario grid) go to the exact DP planner
  (:func:`repro.search.planner.plan_workload`) when the request is inside
  the planner boundary, and to the streaming enumerator
  (:func:`repro.search.search_space`) otherwise;
* grid requests go to :func:`repro.search.planner.plan_grid` or
  :func:`repro.search.robust.search_grid` the same way;
* ``method='planner'`` / ``method='stream'`` force an engine (raising with
  the violated requirement when the planner cannot serve), ``'auto'``
  dispatches and reports why in ``PlacementResponse.dispatch_reason``.

Responses carry the winning placement, its exact objective value (bitwise
the engine's value), the engine used, the dispatch reason, per-request cache
traffic (:class:`CacheInfo`) and wall-clock timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Mapping, Sequence

from ..cache import CacheStats, TableCache, cached_fingerprint
from ..devices.platform import Platform
from ..devices.simulator import SimulatedExecutor
from ..devices.tables import check_fault_args
from ..faults.models import FaultProfile
from ..faults.retry import RetryPolicy, TimeoutPolicy
from ..scenarios import ScenarioGrid
from ..tasks.chain import TaskChain
from ..tasks.graph import TaskGraph

if TYPE_CHECKING:  # pragma: no cover
    from ..search.objectives import Objective
    from ..search.robust import RobustObjective

__all__ = [
    "METHODS",
    "OBJECTIVE_METRICS",
    "CacheInfo",
    "PlacementRequest",
    "PlacementResponse",
    "PlacementService",
]

#: Engines a request may ask for: dispatch, force-DP, force-enumeration.
METHODS = ("auto", "planner", "stream")

#: Metric names a string objective may spell (same set as
#: ``ChainCostTables.metric``); richer criteria pass Objective /
#: RobustObjective instances.
OBJECTIVE_METRICS = ("cost", "energy", "time")


@dataclass(frozen=True)
class PlacementRequest:
    """One placement query: a workload on a platform under an objective.

    ``platform`` is a :class:`~repro.devices.platform.Platform` or a catalog
    name resolved by the service; ``objective`` a metric name (grid requests
    plan its worst case, matching ``search_grid``) or an Objective /
    RobustObjective instance.  ``scenario_grid`` switches the request to
    robust evaluation over the grid's conditions; a
    :class:`~repro.fleet.SampledFleet` is accepted there too and stands for
    its user grid -- pair it with a
    :class:`~repro.search.QuantileObjective` / :class:`~repro.search.SLOObjective`
    for fleet-tail serving (those objectives are outside the DP planner
    boundary, so such requests dispatch to the streaming enumerator).  Fault
    arguments follow the executor's contract: ``faults``/``timeout`` need
    ``retry``.
    """

    workload: "TaskChain | TaskGraph"
    platform: "Platform | str"
    scenario_grid: ScenarioGrid | None = None
    objective: "str | Objective | RobustObjective" = "time"
    constraints: tuple = ()
    devices: tuple[str, ...] | None = None
    faults: FaultProfile | None = None
    retry: RetryPolicy | None = None
    timeout: TimeoutPolicy | None = None
    method: str = "auto"

    def __post_init__(self) -> None:
        if not isinstance(self.workload, (TaskChain, TaskGraph)):
            raise TypeError(
                f"workload must be a TaskChain or TaskGraph, got {self.workload!r}"
            )
        if not isinstance(self.platform, (Platform, str)):
            raise TypeError(
                f"platform must be a Platform or a catalog name, got {self.platform!r}"
            )
        if self.scenario_grid is not None and not isinstance(self.scenario_grid, ScenarioGrid):
            from ..fleet.sample import SampledFleet

            if isinstance(self.scenario_grid, SampledFleet):
                object.__setattr__(self, "scenario_grid", self.scenario_grid.grid)
            else:
                raise TypeError(
                    f"scenario_grid must be a ScenarioGrid, a SampledFleet or None, "
                    f"got {self.scenario_grid!r}"
                )
        if self.method not in METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; available: {list(METHODS)}"
            )
        if isinstance(self.objective, str):
            if self.objective not in OBJECTIVE_METRICS:
                raise ValueError(
                    f"unknown objective {self.objective!r}; available: "
                    f"{list(OBJECTIVE_METRICS)} (or pass an Objective / "
                    "RobustObjective instance)"
                )
        elif not (callable(self.objective) and hasattr(self.objective, "name")):
            raise TypeError(
                f"cannot interpret {self.objective!r} as an objective; pass a "
                f"metric name {list(OBJECTIVE_METRICS)} or an object with a "
                ".name and a batch -> values __call__"
            )
        check_fault_args(self.retry, self.faults, self.timeout)
        # Normalise sequences so requests stay hashable-ish and re-submittable.
        object.__setattr__(self, "constraints", tuple(self.constraints))
        if self.devices is not None:
            object.__setattr__(self, "devices", tuple(self.devices))

    @property
    def is_grid(self) -> bool:
        return self.scenario_grid is not None


@dataclass(frozen=True)
class CacheInfo:
    """Cache traffic of one request: response-level and table-level.

    ``response_hit`` means the whole answer was served from the response
    cache (no engine ran); ``hits``/``misses`` count this request's
    table-cache lookups, and ``entries``/``nbytes`` snapshot the shared
    table cache after the request.
    """

    hits: int
    misses: int
    evictions: int
    entries: int
    nbytes: int
    response_hit: bool = False

    @property
    def served_from_cache(self) -> bool:
        """The response, or every table it needed, was already cached."""
        return self.response_hit or (self.misses == 0 and self.hits > 0)


@dataclass(frozen=True)
class PlacementResponse:
    """The service's answer: a placement, its exact value, and provenance.

    ``value`` is bitwise the engine's objective value for ``placement`` --
    the planner re-scores through the batch engine and the enumerator ranks
    with it, so responses are comparable across engines.
    """

    request: PlacementRequest
    plan: str
    placement: tuple[str, ...]
    objective: str
    value: float
    engine: str
    dispatch_reason: str
    cache_info: CacheInfo
    timing_s: float

    def summary(self) -> str:
        cached = "cache hit" if self.cache_info.served_from_cache else "cache miss"
        return (
            f"{self.plan} ({self.objective}={self.value:.6g}) via {self.engine} "
            f"[{self.dispatch_reason}; {cached}; {self.timing_s * 1e3:.2f} ms]"
        )


def _decode_placement(index: int, label: str, aliases: tuple[str, ...], n_tasks: int) -> tuple[str, ...]:
    """Winning placement as an alias tuple, from its space index (or label)."""
    if index >= 0:
        digits = []
        remaining = int(index)
        for _ in range(n_tasks):
            remaining, digit = divmod(remaining, len(aliases))
            digits.append(digit)
        return tuple(aliases[d] for d in reversed(digits))
    # Indices beyond int64 are reported as -1; labels concatenate single-char
    # aliases, so the label itself decodes (multi-char aliases cap the space
    # well below int64 in practice).
    if all(len(alias) == 1 for alias in aliases):
        return tuple(label)
    raise ValueError(f"cannot decode placement {label!r} over aliases {list(aliases)}")


class PlacementService:
    """Serve placement queries from a shared content-addressed table cache.

    Parameters
    ----------
    platforms:
        The platforms this service answers for: a ``name -> Platform``
        mapping, an iterable of platforms (keyed by ``platform.name``), or
        ``None`` to resolve names through the global catalog
        (:func:`~repro.devices.catalog.get_platform`).
    seed:
        Seed of each per-platform executor (placement queries are
        deterministic; the seed only matters if the executors are also used
        for noisy measurement).
    table_cache:
        The :class:`~repro.cache.TableCache` all executors share; defaults
        to a fresh cache.  Pass an instance to pool tables across services.

    Besides the table cache, the service keeps a **response cache**: a
    placement answer is a deterministic pure function of the request's
    content, so a structurally equal resubmission is served whole -- no
    engine runs -- keyed by the same content fingerprints that key tables.
    Requests whose objective or constraints cannot be content-fingerprinted
    (arbitrary callables) simply bypass it.
    """

    def __init__(
        self,
        platforms: "Mapping[str, Platform] | Sequence[Platform] | None" = None,
        *,
        seed: int = 0,
        table_cache: TableCache | None = None,
    ) -> None:
        self.table_cache = table_cache if table_cache is not None else TableCache()
        self.response_cache = TableCache(max_entries=1024, max_bytes=32 * 2**20)
        self.seed = seed
        self._catalog: dict[str, Platform] | None
        if platforms is None:
            self._catalog = None
        elif isinstance(platforms, Mapping):
            self._catalog = dict(platforms)
        else:
            self._catalog = {platform.name: platform for platform in platforms}
        if self._catalog is not None:
            for name, platform in self._catalog.items():
                if not isinstance(platform, Platform):
                    raise TypeError(
                        f"platform {name!r} must be a Platform, got {platform!r}"
                    )
        self._executors: dict[str, SimulatedExecutor] = {}
        self._resolved: dict[str, Platform] = {}
        self.n_requests = 0

    # -- platform / executor resolution ---------------------------------

    def resolve_platform(self, spec: "Platform | str") -> Platform:
        """The platform a request names (mirroring ``get_platform``'s errors).

        Catalog names resolve once and stick: ``get_platform`` builds a fresh
        object per call, which would defeat fingerprint memoization on the
        hot serving path.
        """
        if isinstance(spec, Platform):
            return spec
        if self._catalog is not None:
            try:
                return self._catalog[spec]
            except KeyError:
                raise KeyError(
                    f"unknown platform {spec!r}; available: {sorted(self._catalog)}"
                ) from None
        resolved = self._resolved.get(spec)
        if resolved is None:
            from ..devices.catalog import get_platform

            resolved = self._resolved[spec] = get_platform(spec)
        return resolved

    def executor_for(self, platform: "Platform | str") -> SimulatedExecutor:
        """The (cached) executor serving a platform, sharing the table cache.

        Executors are keyed by the platform's content fingerprint, so
        structurally equal platforms -- e.g. two ``get_platform`` calls --
        share one executor and its execution-record cache.
        """
        resolved = self.resolve_platform(platform)
        key = cached_fingerprint(resolved)
        executor = self._executors.get(key)
        if executor is None:
            executor = SimulatedExecutor(
                resolved, seed=self.seed, table_cache=self.table_cache
            )
            self._executors[key] = executor
        return executor

    # -- serving ---------------------------------------------------------

    def _request_key(self, request: PlacementRequest, platform: Platform) -> str | None:
        """Content fingerprint of a whole request (``None`` if unkeyable)."""
        from ..cache import canonical, fingerprint

        objective = request.objective
        try:
            parts = (
                "placement-request",
                cached_fingerprint(request.workload),
                cached_fingerprint(platform),
                cached_fingerprint(request.scenario_grid),
                canonical(objective) if not isinstance(objective, str) else objective,
                canonical(request.constraints),
                canonical(request.devices),
                cached_fingerprint(request.faults),
                cached_fingerprint(request.retry),
                cached_fingerprint(request.timeout),
                request.method,
            )
        except TypeError:
            return None  # e.g. a bare-callable objective: serve fresh each time
        return fingerprint(parts)

    def submit(self, request: PlacementRequest) -> PlacementResponse:
        """Answer one placement query (see the module docstring for routing)."""
        if not isinstance(request, PlacementRequest):
            raise TypeError(f"submit() takes a PlacementRequest, got {request!r}")
        start = perf_counter()
        executor = self.executor_for(request.platform)
        key = self._request_key(request, executor.platform)
        core = self.response_cache.get(key) if key is not None else None
        response_hit = core is not None
        before = self.table_cache.stats()
        if core is None:
            if request.is_grid:
                core = self._serve_grid(executor, request)
            else:
                core = self._serve_plain(executor, request)
            if key is not None:
                self.response_cache.put(key, core)
        engine, reason, label, placement, value, name = core
        after = self.table_cache.stats()
        self.n_requests += 1
        return PlacementResponse(
            request=request,
            plan=label,
            placement=placement,
            objective=name,
            value=value,
            engine=engine,
            dispatch_reason=reason,
            cache_info=CacheInfo(
                hits=after.hits - before.hits,
                misses=after.misses - before.misses,
                evictions=after.evictions - before.evictions,
                entries=after.entries,
                nbytes=after.nbytes,
                response_hit=response_hit,
            ),
            timing_s=perf_counter() - start,
        )

    def _serve_plain(self, executor: SimulatedExecutor, request: PlacementRequest):
        from ..offload.space import space_size
        from ..search.driver import search_space
        from ..search.objectives import as_objective
        from ..search.planner import dispatch_reason, plan_workload

        objective = as_objective(request.objective)
        engine = "stream"
        if request.method == "stream":
            reason = "stream requested"
        elif request.retry is not None:
            if request.method == "planner":
                raise ValueError(
                    "method='planner' cannot serve fault-aware requests: expected "
                    "cost under faults couples tasks through survival factors "
                    "outside the DP planner boundary; use method='stream' (or "
                    "'auto') to enumerate"
                )
            reason = (
                "expected cost under faults is outside the DP planner boundary"
            )
        else:
            tables = executor.cost_tables(request.workload, request.devices)
            total = space_size(tables.n_tasks, tables.n_devices)
            why = dispatch_reason(
                tables,
                (objective,),
                top_k=1,
                frontier=None,
                constraints=request.constraints,
                start=0,
                stop=total,
                total=total,
            )
            if why is None:
                engine = "planner"
                reason = (
                    "planner requested"
                    if request.method == "planner"
                    else "exact DP serves this top-1 request"
                )
            elif request.method == "planner":
                raise ValueError(
                    f"method='planner' cannot serve this request: {why}; "
                    "use method='stream' (or 'auto') to enumerate"
                )
            else:
                reason = why
        if engine == "planner":
            plan = plan_workload(
                executor,
                request.workload,
                objective,
                devices=request.devices,
                method="dp",
            )
            return engine, reason, plan.label, plan.placement, plan.value, plan.objective
        result = search_space(
            executor,
            request.workload,
            objectives=(objective,),
            top_k=1,
            frontier=None,
            constraints=request.constraints,
            devices=request.devices,
            method="stream",
            faults=request.faults,
            retry=request.retry,
            timeout=request.timeout,
        )
        selection = result.top[objective.name]
        label = selection.best  # raises if nothing was feasible
        placement = _decode_placement(
            int(selection.indices[0]), label, result.aliases, result.n_tasks
        )
        return engine, reason, label, placement, float(selection.values[0]), objective.name

    def _serve_grid(self, executor: SimulatedExecutor, request: PlacementRequest):
        from ..search.planner import plan_grid
        from ..search.robust import RobustObjective, WorstCaseObjective, search_grid

        if isinstance(request.objective, str):
            robust: RobustObjective = WorstCaseObjective(base=request.objective)
        elif isinstance(request.objective, RobustObjective):
            robust = request.objective
        else:
            raise TypeError(
                f"grid requests need a metric name or a RobustObjective, got "
                f"{request.objective!r}"
            )
        engine = "stream"
        reason = "stream requested"
        if request.method != "stream":
            why: str | None = None
            if request.retry is not None:
                why = "expected cost under faults is outside the DP planner boundary"
            elif request.constraints:
                why = (
                    "constraints are enforced by the streaming enumerator, "
                    "outside the DP planner boundary"
                )
            else:
                try:
                    plan = plan_grid(
                        executor,
                        request.workload,
                        request.scenario_grid,
                        robust,
                        devices=request.devices,
                    )
                except ValueError as exc:
                    why = str(exc)
                else:
                    reason = (
                        "planner requested"
                        if request.method == "planner"
                        else "exact robust DP serves this top-1 request"
                    )
                    return (
                        "planner",
                        reason,
                        plan.label,
                        plan.placement,
                        plan.value,
                        plan.objective,
                    )
            if request.method == "planner":
                raise ValueError(
                    f"method='planner' cannot serve this request: {why}; "
                    "use method='stream' (or 'auto') to enumerate"
                )
            reason = why
        result = search_grid(
            executor,
            request.workload,
            request.scenario_grid,
            objectives=(robust,),
            top_k=1,
            constraints=request.constraints,
            devices=request.devices,
            faults=request.faults,
            retry=request.retry,
            timeout=request.timeout,
        )
        selection = result.top[robust.name]
        label = selection.best
        placement = _decode_placement(
            int(selection.indices[0]), label, result.aliases, result.n_tasks
        )
        return engine, reason, label, placement, float(selection.values[0]), robust.name

    # -- introspection ---------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the shared table cache.

        The response cache keeps its own counters in
        ``service.response_cache.stats()``.
        """
        return self.table_cache.stats()

    def clear_cache(self) -> int:
        """Drop every cached table and response; returns how many were dropped."""
        return self.table_cache.clear() + self.response_cache.clear()
