"""Table renderers: cluster tables (Table I), measurement summaries, CSV/Markdown export.

Pure-text rendering with no third-party dependencies; every benchmark harness
prints its paper artefact through one of these functions so the regenerated
rows can be compared side by side with the published ones.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Mapping, Sequence

from ..core.scores import FinalClustering, ScoreTable
from ..core.sorting import SortResult
from ..measurement.dataset import MeasurementSet

__all__ = [
    "format_table",
    "cluster_table",
    "score_table",
    "measurement_summary_table",
    "sort_trace_table",
    "to_csv",
    "to_markdown",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], indent: str = "") -> str:
    """Render rows as a fixed-width text table."""
    header_list = [str(h) for h in headers]
    row_list = [[("" if cell is None else str(cell)) for cell in row] for row in rows]
    for row in row_list:
        if len(row) != len(header_list):
            raise ValueError("every row must have as many cells as there are headers")
    widths = [len(h) for h in header_list]
    for row in row_list:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        indent + "  ".join(h.ljust(w) for h, w in zip(header_list, widths)),
        indent + "  ".join("-" * w for w in widths),
    ]
    for row in row_list:
        lines.append(indent + "  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def cluster_table(clustering: FinalClustering, title: str = "Clustering of algorithms") -> str:
    """Render a :class:`FinalClustering` in the layout of the paper's Table I."""
    rows = []
    for cluster, entries in clustering:
        for i, entry in enumerate(entries):
            rows.append((f"C{cluster}" if i == 0 else "", f"alg{entry.label}", f"{entry.score:.2f}"))
    body = format_table(("Cluster", "Algorithm", "Relative Score"), rows)
    return f"{title}\n{body}"


def score_table(table: ScoreTable, title: str = "Relative scores per rank") -> str:
    """Render a full :class:`ScoreTable` (every rank an algorithm ever obtained)."""
    rows = []
    for rank in table.ranks():
        for i, entry in enumerate(table.entries(rank)):
            rows.append((f"C{rank}" if i == 0 else "", f"alg{entry.label}", f"{entry.score:.2f}"))
    body = format_table(("Rank", "Algorithm", "Relative Score"), rows)
    return f"{title}\n{body}"


def measurement_summary_table(measurements: MeasurementSet) -> str:
    """Summary statistics of every algorithm's measurement distribution."""
    rows = []
    for summary in measurements.summaries():
        rows.append(
            (
                str(summary.label),
                summary.n,
                f"{summary.mean:.6g}",
                f"{summary.std:.3g}",
                f"{summary.minimum:.6g}",
                f"{summary.median:.6g}",
                f"{summary.maximum:.6g}",
            )
        )
    headers = ("Algorithm", "N", f"mean [{measurements.unit}]", "std", "min", "median", "max")
    return format_table(headers, rows)


def sort_trace_table(result: SortResult) -> str:
    """Render the recorded bubble-sort steps (the Figure 2 walk-through)."""
    rows = []
    for i, step in enumerate(result.trace, start=1):
        rows.append(
            (
                i,
                step.pass_index,
                f"{step.left} {step.outcome.symbol} {step.right}",
                "swap" if step.swapped else "keep",
                " ".join(str(label) for label in step.sequence_after),
                " ".join(str(r) for r in step.ranks_after),
            )
        )
    return format_table(("Step", "Pass", "Comparison", "Action", "Sequence", "Ranks"), rows)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Serialise rows to a CSV string (with header row)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def to_markdown(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Serialise rows to a GitHub-flavoured markdown table."""
    header_list = [str(h) for h in headers]
    lines = [
        "| " + " | ".join(header_list) + " |",
        "| " + " | ".join("---" for _ in header_list) + " |",
    ]
    for row in rows:
        cells = [("" if cell is None else str(cell)) for cell in row]
        if len(cells) != len(header_list):
            raise ValueError("every row must have as many cells as there are headers")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
