"""Text-mode histograms of measurement distributions (Figure 1b without matplotlib).

The execution environment has no plotting stack, so the distributions of
Figure 1b are rendered as aligned ASCII histograms: one row per bin, one block
character per count.  This is enough to *see* which algorithms overlap and
which are clearly separated, which is all the paper uses the figure for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.types import Label

__all__ = ["histogram_counts", "ascii_histogram", "distribution_report"]


def histogram_counts(
    values: np.ndarray | Sequence[float],
    bins: int = 20,
    value_range: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram counts and bin edges (thin wrapper over :func:`numpy.histogram`)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("values must not be empty")
    if bins <= 0:
        raise ValueError("bins must be positive")
    counts, edges = np.histogram(arr, bins=bins, range=value_range)
    return counts, edges


def ascii_histogram(
    values: np.ndarray | Sequence[float],
    bins: int = 20,
    width: int = 50,
    value_range: tuple[float, float] | None = None,
    unit: str = "s",
) -> str:
    """Render one distribution as a multi-line ASCII histogram."""
    if width <= 0:
        raise ValueError("width must be positive")
    counts, edges = histogram_counts(values, bins=bins, value_range=value_range)
    peak = counts.max() if counts.max() > 0 else 1
    lines = []
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{low:10.4g}, {high:10.4g}) {unit} |{bar:<{width}}| {count}")
    return "\n".join(lines)


@dataclass(frozen=True)
class _LabelStats:
    label: Label
    mean: float
    median: float
    std: float


def distribution_report(
    measurements: Mapping[Label, np.ndarray],
    bins: int = 20,
    width: int = 40,
    unit: str = "s",
) -> str:
    """Figure-1b-style report: per-algorithm ASCII histograms over a shared range.

    All histograms share the same bin edges so that the overlap between the
    distributions (the quantity the three-way comparison reasons about) is
    visually comparable.
    """
    if not measurements:
        raise ValueError("at least one algorithm is required")
    arrays = {label: np.asarray(values, dtype=float) for label, values in measurements.items()}
    lo = min(arr.min() for arr in arrays.values())
    hi = max(arr.max() for arr in arrays.values())
    if lo == hi:
        hi = lo * (1 + 1e-9) + 1e-12
    blocks: list[str] = []
    stats = [
        _LabelStats(label, float(a.mean()), float(np.median(a)), float(a.std()))
        for label, a in arrays.items()
    ]
    header = "Algorithm   mean        median      std"
    blocks.append(header)
    for s in stats:
        blocks.append(f"{str(s.label):<10}  {s.mean:<10.4g}  {s.median:<10.4g}  {s.std:<10.4g}")
    blocks.append("")
    for label, arr in arrays.items():
        blocks.append(f"--- {label} (N={arr.size}) ---")
        blocks.append(ascii_histogram(arr, bins=bins, width=width, value_range=(lo, hi), unit=unit))
        blocks.append("")
    return "\n".join(blocks).rstrip() + "\n"
