"""Text reporting: ASCII histograms, cluster tables, CSV/Markdown export."""

from .histograms import ascii_histogram, distribution_report, histogram_counts
from .tables import (
    cluster_table,
    format_table,
    measurement_summary_table,
    score_table,
    sort_trace_table,
    to_csv,
    to_markdown,
)

__all__ = [
    "ascii_histogram",
    "distribution_report",
    "histogram_counts",
    "format_table",
    "cluster_table",
    "score_table",
    "measurement_summary_table",
    "sort_trace_table",
    "to_csv",
    "to_markdown",
]
