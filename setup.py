"""Thin setup.py kept for legacy (non-PEP-660) editable installs.

The execution environment is offline and does not ship the ``wheel`` package,
so ``pip install -e .`` falls back to the legacy ``setup.py develop`` route
(``--no-use-pep517``).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
